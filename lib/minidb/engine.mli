(** Query planning and execution.

    The planner turns a {!Sql.statement} into a pipeline of index-driven
    steps: WHERE conjuncts are classified per table alias, a greedy
    join-order heuristic picks the cheapest next table, and each step
    accesses its table through the best available path — equality lookup,
    range scan (the dewey structural-join windows of paper Section 4.2
    become per-outer-row index range scans), a Dewey sort-merge join for
    inter-alias order-axis range predicates ([d > a || 0xFF] and
    mirrors) whose outer inputs are, or can be upgraded to be, in Dewey
    order, a hash join for equijoins with no usable index, a memoized
    hash semi-join for decorrelated [EXISTS], or a full scan. All
    conjuncts are re-checked as residual filters, so access-path choice
    can never change results, only speed. When the chosen pipeline
    already emits rows in the requested ORDER BY order (the outermost
    step walks an index leading on the single sort column), the final
    stable sort is elided (EXPLAIN: [order: preserved]).

    Before any of that, an optimizer pass performs {e path-filter
    semi-join reduction}: a dimension alias whose only uses are an
    integer equijoin and a [REGEXP_LIKE] on one of its columns — the
    shape of every PPF the translator emits against the [paths] table —
    is evaluated once per dimension row at plan time and replaced by an
    O(1) integer set probe on the fact column, eliminating both the join
    and all per-row regex execution. The materialized set lives on the
    plan and is invalidated with it ({!plan_valid}).

    [run_naive] executes the same statement by brute-force cross products
    with every optimization disabled and is the test oracle for the
    planner. *)

type result = {
  columns : string list;
  rows : Value.t array list;
}

exception Runtime_error of string
(** Type errors detected during execution, e.g. a boolean expression used
    as a value, or an unknown table or column. *)

(** {2 Optimizer switches} *)

type opts = {
  semijoin_reduction : bool;
      (** resolve path-filter regexes once at plan time and probe the
          materialized pathid set instead of joining [paths] *)
  hash_join : bool;
      (** build-and-probe hash joins for equijoins with no index path *)
  force_hash_join : bool;
      (** differential-testing hook: pick a hash join even when an index
          path exists, so the operator is exercised everywhere *)
  merge_join : bool;
      (** sort-merge joins for inter-alias Dewey range predicates whose
          outer inputs are (or can be upgraded to be) in Dewey order *)
  force_merge_join : bool;
      (** differential-testing hook: pick a merge join for every
          candidate order-axis predicate, ordered outer or not *)
  content_probe : bool;
      (** rewrite [REGEXP_LIKE(col, pat)] into a content-index probe of
          the pattern's required literals followed by DFA verification of
          the candidates, when the column has a usable content index *)
}

val default_opts : opts
(** Reduction, hash joins, merge joins and content probes on, [force_*]
    off. *)

(** {2 Execution statistics}

    Operator-level counters accumulated by every plan: one snapshot per
    plan ({!plan_stats}), deltas via {!stats_diff}. Plan-time work (the
    reduction's regex sweep over the dimension table) is counted too, so
    a freshly prepared plan already has non-zero stats. *)

type exec_stats = {
  rows_scanned : int;  (** rows fetched through access paths (incl. hash and merge builds) *)
  rows_probed : int;  (** hash-join and pathid-set probe operations *)
  rows_emitted : int;  (** bindings surviving every join step *)
  regex_plan_evals : int;
      (** plan-time regex executions: the semi-join reduction's sweep over
          the dimension table on a verdict-cache miss *)
  regex_exec_evals : int;
      (** exec-time NFA-backed regex executions — REGEXP_LIKE predicates
          whose pattern could not be frozen into a shared dense DFA. Zero
          on every common path; the bench's regression gate. *)
  dfa_execs : int;
      (** exec-time executions of a shared frozen DFA (content-index
          candidate verification and residual REGEXP_LIKE filters) *)
  hash_builds : int;  (** hash-join build tables materialized *)
  reductions : int;  (** path-filter semi-join reductions applied *)
  merge_probes : int;  (** merge-join probe operations (one per outer binding) *)
  merge_steps : int;  (** merge cursor forward advances *)
  merge_backtracks : int;  (** merge cursor band-join backward slides *)
  partitions_scanned : int;
      (** partitions a pruned partition scan touched (per execution) *)
  partitions_pruned : int;
      (** partitions a pruned partition scan skipped (per execution) *)
  content_probes : int;
      (** content-index probes: one per content-probe access per
          execution *)
  content_candidates : int;
      (** candidate rows produced by content-index probes (the rows the
          probe step scans instead of the whole table) *)
  content_verified : int;
      (** candidates that survived DFA verification (the probe step's
          residual filters) *)
  peak_bytes : int;
      (** estimated peak resident bytes of plan-owned materializations:
          hash-join build tables, semi-join pathid sets, merge-join
          sorted arrays. These live for the plan's lifetime, so the
          running sum is the peak; across plans the field aggregates. *)
}

val stats_zero : exec_stats

val stats_add : exec_stats -> exec_stats -> exec_stats

val stats_diff : exec_stats -> exec_stats -> exec_stats
(** [stats_diff after before]: per-field subtraction, for deltas around a
    single execution of a long-lived plan. *)

val run : ?opts:opts -> Database.t -> Sql.statement -> result

val run_naive : Database.t -> Sql.statement -> result
(** Cross-product evaluation, no indexes, no decorrelation, no optimizer
    pass. *)

(** {2 Prepared plans}

    [prepare] performs all planning work — join ordering, access-path
    choice, semi-join reduction, predicate compilation — exactly once and
    returns a reusable plan. Re-executing a plan skips planning entirely
    and also reuses memoized EXISTS state, materialized pathid sets and
    hash-join build tables across runs, so a warm plan is strictly
    cheaper than [run]. A plan is tied to the database epoch observed at
    prepare time: once the catalog changes ({!Database.epoch} moves), the
    plan is stale and must be re-prepared — this is the invalidation
    signal the service layer's plan cache keys on, and it is what makes
    caching the reduction's verdict and set sound. *)

type plan

val prepare : ?opts:opts -> Database.t -> Sql.statement -> plan
(** Plan the statement against the database's current contents. *)

val plan_epoch : plan -> int
(** The {!Database.epoch} value observed when the plan was prepared. *)

val plan_valid : plan -> bool
(** Whether the database is still at the plan's prepare-time epoch. *)

val plan_compatible : plan -> bool
(** Fine-grained revalidation against the write path's commit log: true
    when the database is unchanged, {e or} when every change since the
    plan's recorded table versions is explained by logged commits
    ({!Database.delta_pathids}) whose changed-pathid sets are disjoint
    from the plan's footprint — a table is pathid-scoped in the footprint
    exactly when every access the plan makes to it is guarded by a
    semi-join reduction probe on its [path_id] column; any other access
    (including the swept [paths] dimension itself) invalidates on any
    touch. On success the plan's recorded versions advance, so the next
    check is O(1) again. Strictly weaker than {!plan_valid}: a valid plan
    is always compatible. *)

val plan_footprint : plan -> (string * [ `All | `Paths of int list ]) list
(** The plan's per-table dependency footprint, sorted by table name —
    [`Paths ids] for pathid-guarded tables, [`All] otherwise. For tests
    and diagnostics. *)

val run_plan : plan -> result
(** Execute a prepared plan under the database's read lock (so a
    concurrent {!Database.with_write} commit never interleaves with row
    fetches). Raises {!Runtime_error} when the plan is incompatible with
    what changed ({!plan_compatible} is false); callers are expected to
    re-{!prepare}. *)

val plan_stats : plan -> exec_stats
(** Cumulative counters for this plan: planning work plus every
    {!run_plan} so far. Snapshot before and after an execution and
    {!stats_diff} the two to attribute work to that execution. *)

val explain : ?opts:opts -> Database.t -> Sql.statement -> string
(** Human-readable plan: applied semi-join reductions first, then one
    line per step with its access path ([hash join], [content index
    probe] and pathid set probes included). EXISTS sub-selects are
    described recursively, annotated with how the executor will treat
    them (uncorrelated / decorrelated semi-join / correlated). *)

type step_profile = {
  table : string;
  alias : string;
  access : string;  (** access path, plus any pathid set probes *)
  examined : int;  (** rows fetched through the access path *)
  passed : int;  (** rows surviving this step's residual filters *)
  seconds : float;
      (** inclusive wall time: a step's loop body contains all later
          steps, so outer steps subsume inner ones *)
}

val run_profiled :
  ?opts:opts -> Database.t -> Sql.statement -> result * step_profile list * exec_stats
(** Like {!run}, additionally reporting per-step row counts and times for
    the top-level select(s) (EXPLAIN-ANALYZE style; sub-queries are not
    instrumented) and the run's operator counters. Union branches
    concatenate their profiles. *)

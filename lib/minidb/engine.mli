(** Query planning and execution.

    The planner turns a {!Sql.statement} into a pipeline of index-driven
    steps: WHERE conjuncts are classified per table alias, a greedy
    join-order heuristic picks the cheapest next table, and each step
    accesses its table through the best available B+tree path — equality
    lookup, range scan (the dewey structural-join windows of paper
    Section 4.2 become per-outer-row index range scans), a memoized hash
    semi-join for decorrelated [EXISTS], or a full scan. All conjuncts are
    re-checked as residual filters, so access-path choice can never change
    results, only speed.

    [run_naive] executes the same statement by brute-force cross products
    and is used as the test oracle for the planner. *)

type result = {
  columns : string list;
  rows : Value.t array list;
}

exception Runtime_error of string
(** Type errors detected during execution, e.g. a boolean expression used
    as a value, or an unknown table or column. *)

val run : Database.t -> Sql.statement -> result

val run_naive : Database.t -> Sql.statement -> result
(** Cross-product evaluation, no indexes, no decorrelation. *)

(** {2 Prepared plans}

    [prepare] performs all planning work — join ordering, access-path
    choice, predicate compilation — exactly once and returns a reusable
    plan. Re-executing a plan skips planning entirely and also reuses
    memoized EXISTS state across runs, so a warm plan is strictly cheaper
    than [run]. A plan is tied to the database epoch observed at prepare
    time: once the catalog changes ({!Database.epoch} moves), the plan is
    stale and must be re-prepared — this is the invalidation signal the
    service layer's plan cache keys on. *)

type plan

val prepare : Database.t -> Sql.statement -> plan
(** Plan the statement against the database's current contents. *)

val plan_epoch : plan -> int
(** The {!Database.epoch} value observed when the plan was prepared. *)

val plan_valid : plan -> bool
(** Whether the database is still at the plan's prepare-time epoch. *)

val run_plan : plan -> result
(** Execute a prepared plan. Raises {!Runtime_error} when the plan is
    stale ({!plan_valid} is false); callers are expected to re-{!prepare}. *)

val explain : Database.t -> Sql.statement -> string
(** Human-readable plan: one line per step with its access path. *)

type step_profile = {
  table : string;
  alias : string;
  access : string;
  examined : int;  (** rows fetched through the access path *)
  passed : int;  (** rows surviving this step's residual filters *)
}

val run_profiled : Database.t -> Sql.statement -> result * step_profile list
(** Like {!run}, additionally reporting per-step row counts for the
    top-level select(s) (EXPLAIN-ANALYZE style; sub-queries are not
    instrumented). Union branches concatenate their profiles. *)

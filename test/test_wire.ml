(* Wire codec properties: byte-identical round-trips for every message
   shape, and the typed rejections — truncated payloads, trailing bytes,
   unknown tags, oversized length prefixes — that keep the decoder from
   ever reading past the declared frame. *)

module Wire = Ppfx_net.Wire
module Value = Ppfx_minidb.Value

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_bytes n = QCheck.Gen.(string_size (0 -- n))

let gen_value =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun i -> Value.Int i) int;
        map (fun f -> Value.Float f) float;
        map (fun s -> Value.Str s) (gen_bytes 20);
        map (fun s -> Value.Bin s) (gen_bytes 20);
      ])

let gen_row = QCheck.Gen.(map Array.of_list (list_size (0 -- 6) gen_value))

let gen_column =
  QCheck.Gen.(
    map2
      (fun name ty -> { Wire.name; ty })
      (gen_bytes 12)
      (oneofl [ Wire.Tany; Wire.Tint; Wire.Tfloat; Wire.Ttext; Wire.Tbin ]))

let gen_update_op =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun parent before fragment ->
            Wire.Op_insert { parent; before; fragment })
          small_nat (option small_nat) (gen_bytes 32);
        map (fun target -> Wire.Op_delete { target }) small_nat;
        map2
          (fun target fragment -> Wire.Op_replace { target; fragment })
          small_nat (gen_bytes 32);
        map3
          (fun target name value -> Wire.Op_set_attr { target; name; value })
          small_nat (gen_bytes 12)
          (option (gen_bytes 12));
        map2
          (fun target text -> Wire.Op_set_text { target; text })
          small_nat (gen_bytes 24);
      ])

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun version client -> Wire.Hello { version; client })
          small_nat (gen_bytes 16);
        map (fun query -> Wire.Prepare { query }) (gen_bytes 64);
        map2 (fun stmt window -> Wire.Execute { stmt; window }) small_nat small_nat;
        map2 (fun stmt window -> Wire.Fetch { stmt; window }) small_nat small_nat;
        map (fun stmt -> Wire.Close_stmt { stmt }) small_nat;
        map (fun op -> Wire.Update { op }) gen_update_op;
        return Wire.Ping;
        return Wire.Quit;
      ])

let gen_response =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun version server shards -> Wire.Welcome { version; server; shards })
          small_nat (gen_bytes 16) small_nat;
        map
          (fun (stmt, columns, empty, sql) ->
            Wire.Prepared { stmt; columns; empty; sql })
          (quad small_nat
             (list_size (0 -- 5) gen_column)
             bool
             (option (gen_bytes 40)));
        map3
          (fun stmt rows more -> Wire.Rows { stmt; rows; more })
          small_nat
          (list_size (0 -- 5) gen_row)
          bool;
        map (fun stmt -> Wire.Closed { stmt }) small_nat;
        map2
          (fun (inserted, updated, deleted) (new_paths, dead_paths) ->
            Wire.Updated { inserted; updated; deleted; new_paths; dead_paths })
          (triple small_nat small_nat small_nat)
          (pair small_nat small_nat);
        return Wire.Pong;
        map2
          (fun code message -> Wire.Error { code; message })
          (oneofl
             [
               Wire.Protocol; Wire.Parse_error; Wire.Unsupported; Wire.Runtime;
               Wire.Admission; Wire.Bad_statement; Wire.Version_mismatch;
               Wire.Shutting_down;
             ])
          (gen_bytes 32);
        return Wire.Bye;
      ])

let request_arb = QCheck.make ~print:(fun _ -> "<request>") gen_request
let response_arb = QCheck.make ~print:(fun _ -> "<response>") gen_response

(* ------------------------------------------------------------------ *)
(* Round trips                                                         *)
(* ------------------------------------------------------------------ *)

(* Byte-identical re-encode: decode-then-encode reproduces the exact
   payload (structural comparison would be weaker — Float NaN cells
   compare unequal to themselves, while their byte image is stable). *)

let prop_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"request decode/encode is byte-identical"
    request_arb (fun req ->
      let p = Wire.request_payload req in
      let req' = Wire.request_of_payload p in
      req' = req && String.equal (Wire.request_payload req') p)

let prop_response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"response decode/encode is byte-identical"
    response_arb (fun resp ->
      let p = Wire.response_payload resp in
      String.equal (Wire.response_payload (Wire.response_of_payload p)) p)

(* ------------------------------------------------------------------ *)
(* Rejections                                                          *)
(* ------------------------------------------------------------------ *)

let prop_truncated =
  QCheck.Test.make ~count:500
    ~name:"every strict prefix of a response payload is Truncated"
    QCheck.(pair response_arb (0 -- 1000))
    (fun (resp, k) ->
      let p = Wire.response_payload resp in
      let k = k mod max 1 (String.length p) in
      match Wire.response_of_payload (String.sub p 0 k) with
      | _ -> false
      | exception Wire.Codec Wire.Truncated -> true
      | exception Wire.Codec _ -> false)

let prop_trailing =
  QCheck.Test.make ~count:300 ~name:"payloads with trailing bytes are rejected"
    request_arb (fun req ->
      let p = Wire.request_payload req ^ "\x00" in
      match Wire.request_of_payload p with
      | _ -> false
      | exception Wire.Codec (Wire.Trailing 1) -> true
      | exception Wire.Codec _ -> false)

let prop_frame_extraction =
  QCheck.Test.make ~count:300
    ~name:"extract_frame stops at the length prefix, never reads past it"
    QCheck.(pair response_arb (QCheck.make (gen_bytes 16)))
    (fun (resp, garbage) ->
      let p = Wire.response_payload resp in
      let frame = Wire.frame_of_payload p in
      let buf = Bytes.of_string (frame ^ garbage) in
      (* A complete frame followed by junk: exactly the frame is consumed. *)
      (match Wire.extract_frame buf ~off:0 ~len:(Bytes.length buf) with
       | Some (payload, consumed) ->
         String.equal payload p && consumed = String.length frame
       | None -> false)
      (* Any window shorter than the frame: need more bytes, no error. *)
      && (String.length frame < 2
          ||
          let cut = String.length frame - 1 in
          Wire.extract_frame (Bytes.of_string (String.sub frame 0 cut)) ~off:0
            ~len:cut
          = None))

let bad_tag () =
  let p = Wire.request_payload Wire.Ping in
  let mangled = "\x50" ^ String.sub p 1 (String.length p - 1) in
  (match Wire.request_of_payload mangled with
   | _ -> Alcotest.fail "unknown tag accepted"
   | exception Wire.Codec (Wire.Bad_tag 0x50) -> ());
  match Wire.response_of_payload mangled with
  | _ -> Alcotest.fail "unknown response tag accepted"
  | exception Wire.Codec (Wire.Bad_tag 0x50) -> ()

let oversized () =
  (* A 4-byte prefix declaring a payload over the bound is rejected
     before any payload byte exists. *)
  let prefix = Bytes.of_string "\x00\x10\x00\x00" (* 1 MiB *) in
  match Wire.extract_frame ~max_frame:1024 prefix ~off:0 ~len:4 with
  | _ -> Alcotest.fail "oversized prefix accepted"
  | exception Wire.Codec (Wire.Oversized n) ->
    Alcotest.(check int) "declared length" 0x100000 n

let frame_layout () =
  Alcotest.(check string) "length prefix is 4-byte big-endian"
    "\x00\x00\x00\x03abc"
    (Wire.frame_of_payload "abc");
  Alcotest.(check string) "Ping is tag 0x06" "\x06"
    (Wire.request_payload Wire.Ping);
  Alcotest.(check string) "Bye is tag 0x87" "\x87"
    (Wire.response_payload Wire.Bye)

let version_pinned () =
  Alcotest.(check int) "protocol version" 1 Wire.protocol_version

let () =
  Alcotest.run "wire"
    [
      ( "roundtrip",
        List.map QCheck_alcotest.to_alcotest
          [ prop_request_roundtrip; prop_response_roundtrip ] );
      ( "rejection",
        List.map QCheck_alcotest.to_alcotest
          [ prop_truncated; prop_trailing; prop_frame_extraction ]
        @ [
            Alcotest.test_case "bad tag" `Quick bad_tag;
            Alcotest.test_case "oversized prefix" `Quick oversized;
          ] );
      ( "layout",
        [
          Alcotest.test_case "frame layout" `Quick frame_layout;
          Alcotest.test_case "version" `Quick version_pinned;
        ] );
    ]

(* Tests for the prepared-query service layer: LRU mechanics, metrics
   accounting, engine-level prepared plans, session cache behaviour, and
   a qcheck differential property asserting that warm (cache-hit)
   execution returns byte-identical results to a fresh cold translation,
   including across store-epoch invalidations. *)

module Doc = Ppfx_xml.Doc
module Graph = Ppfx_schema.Graph
module Loader = Ppfx_shred.Loader
module Translate = Ppfx_translate.Translate
module Engine = Ppfx_minidb.Engine
module Database = Ppfx_minidb.Database
module Value = Ppfx_minidb.Value
module Xmark = Ppfx_workloads.Xmark
module Xparser = Ppfx_xpath.Parser
module Session = Ppfx_service.Session
module Lru = Ppfx_service.Lru
module Metrics = Ppfx_service.Metrics
module Batch = Ppfx_service.Batch

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let schema = Xmark.schema ()

let doc1 = lazy (Doc.of_tree (Xmark.generate ~seed:1 ~items_per_region:3 ()))
let doc2 = lazy (Doc.of_tree (Xmark.generate ~seed:2 ~items_per_region:2 ()))

let shared =
  lazy
    (let store = Loader.shred schema (Lazy.force doc1) in
     store, Session.create store)

(* Byte-level rendering of an engine result: any difference in columns,
   row order or values shows up in the comparison. *)
let render (r : Engine.result) =
  String.concat "|" r.Engine.columns
  ^ "\n"
  ^ String.concat "\n"
      (List.map
         (fun row ->
           String.concat ","
             (Array.to_list (Array.map Value.to_string row)))
         r.Engine.rows)

(* The cold path: fresh parse, fresh translator, fresh one-shot plan. *)
let cold_result (store : Loader.t) query =
  let expr = Xparser.parse query in
  let tr = Translate.create store.Loader.mapping in
  Option.map (fun stmt -> Engine.run store.Loader.db stmt) (Translate.translate tr expr)

let cold_render store query =
  match cold_result store query with
  | None -> "(empty)"
  | Some r -> render r

let warm_render session query =
  let p = Session.prepare session query in
  match Session.sql p with
  | None -> "(empty)"
  | Some _ -> render (Session.execute session p)

(* ------------------------------------------------------------------ *)
(* LRU                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_basics () =
  let c = Lru.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Lru.capacity c);
  Alcotest.(check (option string)) "no eviction on a" None (Lru.add c "a" "1");
  Alcotest.(check (option string)) "no eviction on b" None (Lru.add c "b" "2");
  Alcotest.(check (option string)) "find a" (Some "1") (Lru.find c "a");
  (* a was promoted, so adding c evicts b. *)
  Alcotest.(check (option string)) "b evicted" (Some "b") (Lru.add c "c" "3");
  Alcotest.(check bool) "b gone" false (Lru.mem c "b");
  Alcotest.(check bool) "a kept" true (Lru.mem c "a");
  Alcotest.(check int) "length bounded" 2 (Lru.length c);
  Alcotest.(check int) "one eviction" 1 (Lru.evictions c);
  Alcotest.(check (list string)) "MRU order" [ "c"; "a" ]
    (List.map fst (Lru.to_list c))

let test_lru_replace_and_remove () =
  let c = Lru.create ~capacity:2 in
  ignore (Lru.add c "a" 1);
  ignore (Lru.add c "b" 2);
  Alcotest.(check (option string)) "replace is not an eviction" None (Lru.add c "a" 10);
  Alcotest.(check (option int)) "replaced value" (Some 10) (Lru.find c "a");
  Alcotest.(check int) "length unchanged" 2 (Lru.length c);
  Lru.remove c "a";
  Alcotest.(check bool) "removed" false (Lru.mem c "a");
  Alcotest.(check int) "length after remove" 1 (Lru.length c);
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  (* The list invariants survive a clear. *)
  ignore (Lru.add c "x" 1);
  Alcotest.(check (option int)) "usable after clear" (Some 1) (Lru.find c "x")

let test_lru_capacity_one () =
  let c = Lru.create ~capacity:1 in
  ignore (Lru.add c "a" "1");
  Alcotest.(check (option string)) "a evicted by b" (Some "a") (Lru.add c "b" "2");
  Alcotest.(check (option string)) "only b" (Some "2") (Lru.find c "b");
  Alcotest.check Alcotest.bool "invalid capacity rejected" true
    (match Lru.create ~capacity:0 with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_lru_churn () =
  (* Heavier mixed workload: the hash table and recency list must agree. *)
  let c = Lru.create ~capacity:16 in
  for i = 0 to 999 do
    ignore (Lru.add c (string_of_int (i mod 40)) i);
    ignore (Lru.find c (string_of_int ((i * 7) mod 40)))
  done;
  Alcotest.(check int) "bounded" 16 (Lru.length c);
  Alcotest.(check int) "recency list consistent" 16 (List.length (Lru.to_list c))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_accumulators () =
  let m = Metrics.create () in
  Alcotest.(check bool) "hit rate undefined" true (Float.is_nan (Metrics.hit_rate m));
  Metrics.record m Metrics.Parse 0.25;
  Metrics.record m Metrics.Parse 0.75;
  Alcotest.(check int) "parse count" 2 (Metrics.stage_count m Metrics.Parse);
  Alcotest.(check (float 1e-9)) "parse total" 1.0 (Metrics.stage_total m Metrics.Parse);
  Alcotest.(check int) "execute untouched" 0 (Metrics.stage_count m Metrics.Execute);
  let v = Metrics.time m Metrics.Execute (fun () -> 42) in
  Alcotest.(check int) "time returns value" 42 v;
  Alcotest.(check int) "time recorded" 1 (Metrics.stage_count m Metrics.Execute);
  (* time records even when the thunk raises *)
  (try Metrics.time m Metrics.Execute (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "raise recorded" 2 (Metrics.stage_count m Metrics.Execute);
  Metrics.incr_hits m;
  Metrics.incr_hits m;
  Metrics.incr_misses m;
  Alcotest.(check (float 1e-9)) "hit rate" (2.0 /. 3.0) (Metrics.hit_rate m);
  Metrics.reset m;
  Alcotest.(check int) "reset clears stages" 0 (Metrics.stage_count m Metrics.Parse);
  Alcotest.(check int) "reset clears counters" 0 (Metrics.hits m)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_metrics_dump () =
  let m = Metrics.create () in
  Metrics.incr_queries m;
  Metrics.incr_misses m;
  Metrics.record m Metrics.Translate 0.001;
  let dump = Metrics.dump m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("dump mentions " ^ needle) true (contains ~needle dump))
    [ "queries 1"; "misses"; "translate"; "execute" ];
  let json = Metrics.to_json m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json mentions " ^ needle) true (contains ~needle json))
    [ "\"queries\":1"; "\"misses\":1"; "\"translate\":{\"count\":1" ]

(* ------------------------------------------------------------------ *)
(* Engine prepared plans                                               *)
(* ------------------------------------------------------------------ *)

let test_engine_prepare () =
  let store = Loader.shred schema (Lazy.force doc1) in
  let tr = Translate.create store.Loader.mapping in
  let stmt =
    match Translate.translate tr (Xparser.parse "//keyword") with
    | Some s -> s
    | None -> Alcotest.fail "//keyword should translate"
  in
  let reference = render (Engine.run store.Loader.db stmt) in
  let plan = Engine.prepare store.Loader.db stmt in
  Alcotest.(check bool) "fresh plan valid" true (Engine.plan_valid plan);
  Alcotest.(check string) "first replay" reference (render (Engine.run_plan plan));
  Alcotest.(check string) "second replay" reference (render (Engine.run_plan plan));
  Alcotest.(check int) "epoch recorded" (Database.epoch store.Loader.db)
    (Engine.plan_epoch plan)

let test_engine_plan_staleness () =
  let store = Loader.shred schema (Lazy.force doc1) in
  let tr = Translate.create store.Loader.mapping in
  let stmt = Option.get (Translate.translate tr (Xparser.parse "//keyword")) in
  let plan = Engine.prepare store.Loader.db stmt in
  let _store' = Loader.load store (Lazy.force doc2) in
  Alcotest.(check bool) "plan stale after load" false (Engine.plan_valid plan);
  Alcotest.check Alcotest.bool "stale plan raises" true
    (match Engine.run_plan plan with
     | exception Engine.Runtime_error _ -> true
     | _ -> false);
  (* Re-preparing against the mutated store works and sees the new data. *)
  let plan' = Engine.prepare store.Loader.db stmt in
  Alcotest.(check bool) "new plan valid" true (Engine.plan_valid plan')

let test_epoch_moves () =
  let db = Database.create () in
  let e0 = Database.epoch db in
  let t = Database.create_table db ~name:"t" ~columns:[ { Ppfx_minidb.Table.name = "x"; ty = Value.Tint } ] in
  let e1 = Database.epoch db in
  Alcotest.(check bool) "create_table moves epoch" true (e1 <> e0);
  ignore (Ppfx_minidb.Table.insert t [| Value.Int 1 |]);
  let e2 = Database.epoch db in
  Alcotest.(check bool) "insert moves epoch" true (e2 <> e1);
  ignore (Ppfx_minidb.Table.delete t 0);
  Alcotest.(check bool) "delete moves epoch" true (Database.epoch db <> e2)

(* ------------------------------------------------------------------ *)
(* Session behaviour                                                   *)
(* ------------------------------------------------------------------ *)

let test_session_caches () =
  let session = Session.of_doc ~schema (Lazy.force doc1) in
  let m = Session.metrics session in
  let ids1 = Session.run_ids session "//keyword" in
  Alcotest.(check int) "first arrival misses" 1 (Metrics.misses m);
  Alcotest.(check int) "no hit yet" 0 (Metrics.hits m);
  let ids2 = Session.run_ids session "//keyword" in
  Alcotest.(check int) "second arrival hits" 1 (Metrics.hits m);
  Alcotest.(check (list int)) "same answer" ids1 ids2;
  Alcotest.(check int) "translated once" 1 (Metrics.stage_count m Metrics.Translate);
  Alcotest.(check int) "planned once" 1 (Metrics.stage_count m Metrics.Plan);
  Alcotest.(check int) "executed twice" 2 (Metrics.stage_count m Metrics.Execute);
  Alcotest.(check int) "one live entry" 1 (Session.cache_length session)

let test_session_normalizes () =
  let session = Session.of_doc ~schema (Lazy.force doc1) in
  let p1 = Session.prepare session "//keyword[ancestor::item]" in
  let p2 = Session.prepare session "//keyword[ ancestor :: item ]" in
  Alcotest.(check string) "same canonical form" (Session.canonical p1)
    (Session.canonical p2);
  Alcotest.(check int) "textual variants share one entry" 1
    (Metrics.misses (Session.metrics session));
  Alcotest.(check int) "second prepare was a hit" 1 (Metrics.hits (Session.metrics session))

let test_session_capacity () =
  let session = Session.of_doc ~cache_capacity:2 ~schema (Lazy.force doc1) in
  ignore (Session.run_ids session "//keyword");
  ignore (Session.run_ids session "//person");
  ignore (Session.run_ids session "//bidder");
  Alcotest.(check int) "cache bounded" 2 (Session.cache_length session);
  Alcotest.(check int) "eviction counted" 1 (Metrics.evictions (Session.metrics session));
  (* The evicted query still answers correctly (re-translated). *)
  let cold = cold_render (Session.store session) "//keyword" in
  Alcotest.(check string) "evicted entry recomputed" cold (warm_render session "//keyword")

let test_session_provably_empty () =
  let session = Session.of_doc ~schema (Lazy.force doc1) in
  (* "person" is never a child of "site"'s item structure root-to-leaf. *)
  let p = Session.prepare session "/site/person" in
  Alcotest.(check bool) "provably empty" true (Session.sql p = None);
  Alcotest.(check (list int)) "no ids" [] (Session.execute_ids session p)

let test_session_epoch_invalidation () =
  let session = Session.of_doc ~schema (Lazy.force doc1) in
  let m = Session.metrics session in
  let p = Session.prepare session "//keyword" in
  let before = Session.execute_ids session p in
  let e0 = Session.epoch session in
  Session.load session (Lazy.force doc2);
  Alcotest.(check bool) "epoch moved" true (Session.epoch session <> e0);
  let after = Session.execute_ids session p in
  Alcotest.(check int) "invalidation counted" 1 (Metrics.invalidations m);
  Alcotest.(check bool) "answer grew across documents" true
    (List.length after > List.length before);
  let cold = cold_render (Session.store session) "//keyword" in
  Alcotest.(check string) "matches cold translation on mutated store" cold
    (warm_render session "//keyword");
  (* Replans exactly once: the refreshed plan serves later arrivals. *)
  ignore (Session.execute_ids session p);
  Alcotest.(check int) "no further invalidations" 1 (Metrics.invalidations m)

let test_batch () =
  let session = Session.of_doc ~schema (Lazy.force doc1) in
  let queries =
    Batch.parse_queries "# XPathMark sample\n//keyword\n\n  //bogus(syntax\n//person\n"
  in
  Alcotest.(check int) "comments and blanks dropped" 3 (List.length queries);
  let outcomes = Batch.run session queries in
  (match outcomes with
   | [ ok1; err; ok2 ] ->
     Alcotest.(check bool) "first ok" true (Result.is_ok ok1.Batch.result);
     Alcotest.(check bool) "bad query captured" true (Result.is_error err.Batch.result);
     Alcotest.(check bool) "batch continues past errors" true (Result.is_ok ok2.Batch.result)
   | _ -> Alcotest.fail "expected three outcomes")

let test_fingerprint () =
  let store = Loader.shred schema (Lazy.force doc1) in
  let tr1 = Translate.create store.Loader.mapping in
  let tr2 = Translate.create store.Loader.mapping in
  Alcotest.(check string) "fingerprint deterministic" (Translate.fingerprint tr1)
    (Translate.fingerprint tr2);
  let tr3 =
    Translate.create
      ~options:{ Translate.default_options with omit_path_filters = false }
      store.Loader.mapping
  in
  Alcotest.(check bool) "options change the fingerprint" true
    (Translate.fingerprint tr1 <> Translate.fingerprint tr3);
  let other = Loader.shred (Graph.infer (Lazy.force doc2)) (Lazy.force doc2) in
  let tr4 = Translate.create other.Loader.mapping in
  Alcotest.(check bool) "schema changes the fingerprint" true
    (Translate.fingerprint tr1 <> Translate.fingerprint tr4)

(* ------------------------------------------------------------------ *)
(* qcheck differential property                                        *)
(* ------------------------------------------------------------------ *)

(* Random queries over the XMark vocabulary (forward axes, wildcards,
   existence/backward/attribute predicates) — the subset the translator
   accepts; out-of-subset draws are discarded via assume_fail. *)
let gen_query =
  let open QCheck.Gen in
  let name =
    oneofl
      [
        "site"; "regions"; "africa"; "asia"; "item"; "location"; "quantity"; "name";
        "description"; "parlist"; "listitem"; "text"; "keyword"; "emph"; "mailbox";
        "mail"; "people"; "person"; "address"; "city"; "country"; "open_auctions";
        "open_auction"; "bidder"; "increase"; "personref"; "interval"; "start"; "date";
        "closed_auctions"; "closed_auction"; "annotation"; "author"; "seller";
      ]
  in
  let test = frequency [ 5, name; 1, return "*" ] in
  let step =
    frequency [ 3, map (fun t -> "/" ^ t) test; 2, map (fun t -> "//" ^ t) test ]
  in
  let predicate =
    oneof
      [
        map (fun n -> "[" ^ n ^ "]") name;
        map (fun n -> "[.//" ^ n ^ "]") name;
        map (fun n -> "[parent::" ^ n ^ "]") name;
        map (fun n -> "[ancestor::" ^ n ^ "]") name;
        return "[@id]";
        return "[@featured = 'yes']";
        map2 (fun a b -> "[" ^ a ^ " or " ^ b ^ "]") name name;
      ]
  in
  map2
    (fun first steps ->
      "//" ^ first ^ String.concat "" (List.map (fun (s, p) -> s ^ p) steps))
    name
    (list_size (int_range 0 3) (pair step (oneof [ return ""; predicate ])))

let prop_warm_equals_cold =
  QCheck.Test.make ~count:300
    ~name:"warm cache-hit execution is byte-identical to cold translation"
    (QCheck.make ~print:(fun q -> q) gen_query)
    (fun query ->
      let store, session = Lazy.force shared in
      match cold_render store query with
      | exception Xparser.Error _ -> QCheck.assume_fail ()
      | exception Translate.Unsupported _ -> QCheck.assume_fail ()
      | cold ->
        (* First arrival fills the cache (or hits a previous iteration's
           entry); the second is a guaranteed warm hit. *)
        let m = Session.metrics session in
        let warm1 = warm_render session query in
        let hits_before = Metrics.hits m in
        let warm2 = warm_render session query in
        if Metrics.hits m <= hits_before then
          QCheck.Test.fail_reportf "query %s: second arrival did not hit the cache"
            query
        else if warm1 <> cold then
          QCheck.Test.fail_reportf "query %s: first warm result differs\ncold:\n%s\nwarm:\n%s"
            query cold warm1
        else if warm2 <> cold then
          QCheck.Test.fail_reportf "query %s: cached result differs\ncold:\n%s\nwarm:\n%s"
            query cold warm2
        else true)

(* The same property across an epoch bump: cached plans must be replaced,
   never replayed against stale assumptions. *)
let prop_invalidation_preserves_results =
  QCheck.Test.make ~count:60
    ~name:"epoch bump invalidates cached plans and preserves results"
    (QCheck.make ~print:(fun q -> q) gen_query)
    (fun query ->
      let session = Session.of_doc ~schema (Lazy.force doc1) in
      (match Session.run_ids session query with
       | exception Xparser.Error _ -> QCheck.assume_fail ()
       | exception Translate.Unsupported _ -> QCheck.assume_fail ()
       | _warm_before ->
         Session.load session (Lazy.force doc2);
         let cold = cold_render (Session.store session) query in
         let warm = warm_render session query in
         if warm <> cold then
           QCheck.Test.fail_reportf
             "query %s after epoch bump:\ncold:\n%s\nwarm:\n%s" query cold warm
         else true))

(* ------------------------------------------------------------------ *)

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "service"
    [
      ( "lru",
        List.map tc
          [
            "basics", test_lru_basics;
            "replace and remove", test_lru_replace_and_remove;
            "capacity one", test_lru_capacity_one;
            "churn", test_lru_churn;
          ] );
      ( "metrics",
        List.map tc
          [ "accumulators", test_metrics_accumulators; "dump", test_metrics_dump ] );
      ( "engine-plans",
        List.map tc
          [
            "prepare and replay", test_engine_prepare;
            "staleness", test_engine_plan_staleness;
            "epoch moves", test_epoch_moves;
          ] );
      ( "session",
        List.map tc
          [
            "caches", test_session_caches;
            "normalizes", test_session_normalizes;
            "capacity", test_session_capacity;
            "provably empty", test_session_provably_empty;
            "epoch invalidation", test_session_epoch_invalidation;
            "batch", test_batch;
            "fingerprint", test_fingerprint;
          ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_warm_equals_cold; prop_invalidation_preserves_results ] );
    ]

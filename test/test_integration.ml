(* End-to-end integration: every storage engine must return exactly the
   reference evaluator's answer for every benchmark query on generated
   XMark and DBLP documents. This is the cross-engine correctness matrix
   behind the paper's Section 5 comparison. *)

module Doc = Ppfx_xml.Doc
module Graph = Ppfx_schema.Graph
module Eval = Ppfx_xpath.Eval
module Xparser = Ppfx_xpath.Parser
module Loader = Ppfx_shred.Loader
module Edge = Ppfx_shred.Edge
module Translate = Ppfx_translate.Translate
module Edge_translate = Ppfx_translate.Edge_translate
module Accelerator = Ppfx_baselines.Accelerator
module Monet_sim = Ppfx_baselines.Monet_sim
module Commercial = Ppfx_baselines.Commercial
module Engine = Ppfx_minidb.Engine
module Xmark = Ppfx_workloads.Xmark
module Dblp = Ppfx_workloads.Dblp

type fixture = {
  doc : Doc.t;
  schema_store : Loader.t;
  edge_store : Edge.t;
  accel_store : Accelerator.t;
  monet : Monet_sim.t;
}

let make_fixture doc schema =
  {
    doc;
    schema_store = Loader.shred schema doc;
    edge_store = Edge.shred doc;
    accel_store = Accelerator.shred doc;
    monet = Monet_sim.of_doc doc;
  }

let xmark_fixture =
  lazy
    (let doc = Doc.of_tree (Xmark.generate ~items_per_region:4 ()) in
     make_fixture doc (Xmark.schema ()))

let dblp_fixture =
  lazy
    (let doc = Doc.of_tree (Dblp.generate ~entries:60 ()) in
     make_fixture doc (Dblp.schema_of doc))

let run_engine fx engine query =
  let expr = Xparser.parse query in
  match engine with
  | `Reference -> Eval.select_elements fx.doc expr
  | `Ppf ->
    let translator = Translate.create fx.schema_store.Loader.mapping in
    (match Translate.translate translator expr with
     | None -> []
     | Some stmt -> Translate.result_ids (Engine.run fx.schema_store.Loader.db stmt))
  | `Edge_ppf ->
    (match Edge_translate.translate expr with
     | None -> []
     | Some stmt -> Edge_translate.result_ids (Engine.run fx.edge_store.Edge.db stmt))
  | `Accelerator ->
    (match Accelerator.translate expr with
     | None -> []
     | Some stmt -> Accelerator.result_ids (Engine.run fx.accel_store.Accelerator.db stmt))
  | `Monet -> Monet_sim.run fx.monet expr
  | `Commercial ->
    (match Commercial.translate fx.schema_store.Loader.mapping expr with
     | None -> []
     | Some stmt -> Commercial.result_ids (Engine.run fx.schema_store.Loader.db stmt))

let engines = [ "ppf", `Ppf; "edge-ppf", `Edge_ppf; "accelerator", `Accelerator; "monet", `Monet ]

let twig_agrees fx () =
  let store = Ppfx_baselines.Twig.of_doc fx.doc in
  List.iter
    (fun (name, q) ->
      let expr = Xparser.parse q in
      let expected = Eval.select_elements fx.doc expr in
      let got = Ppfx_baselines.Twig.run store expr in
      if got <> expected then
        Alcotest.failf "twig on %s: expected %d nodes, got %d" name
          (List.length expected) (List.length got))
    Xmark.twig_queries

let check_all fx (name, query) () =
  let expected = run_engine fx `Reference query in
  if expected = [] && not (List.mem name [ "Q11" ]) then
    (* All benchmark queries are generated to be non-empty, so an empty
       expectation would make the comparison vacuous. Q11 may be empty at
       large scales (as in the paper's own table). *)
    Alcotest.failf "%s: reference result is unexpectedly empty" name;
  List.iter
    (fun (ename, engine) ->
      let got = run_engine fx engine query in
      if got <> expected then
        Alcotest.failf "%s via %s: expected %d nodes, got %d nodes" name ename
          (List.length expected) (List.length got))
    engines

let commercial_subset fx () =
  List.iter
    (fun name ->
      let query = Xmark.query name in
      let expected = run_engine fx `Reference query in
      let got = run_engine fx `Commercial query in
      Alcotest.(check (list int)) name expected got)
    [ "Q23"; "Q24"; "QA" ]

let commercial_rejections fx () =
  List.iter
    (fun name ->
      let query = Xmark.query name in
      match run_engine fx `Commercial query with
      | _ -> Alcotest.failf "%s should be rejected by the built-in processor" name
      | exception Commercial.Not_supported _ -> ())
    [ "Q1"; "Q3"; "Q6"; "Q9"; "Q13"; "Q22" ]

(* Multi-document stores: ids are globalised and Dewey positions are
   doc-prefixed, so results over a two-document store must equal the
   disjoint union of the per-document reference answers. *)
let multi_document () =
  let schema = Xmark.schema () in
  let doc1 = Doc.of_tree (Xmark.generate ~seed:1 ~items_per_region:2 ()) in
  let doc2 = Doc.of_tree (Xmark.generate ~seed:2 ~items_per_region:3 ()) in
  let store = Loader.create (Ppfx_shred.Mapping.of_schema schema) in
  let store = Loader.load store doc1 in
  let store = Loader.load store doc2 in
  let translator = Translate.create store.Loader.mapping in
  let run q =
    match Translate.translate translator (Xparser.parse q) with
    | None -> []
    | Some stmt -> Translate.result_ids (Engine.run store.Loader.db stmt)
  in
  let expected q =
    let e1 = Eval.select_elements doc1 (Xparser.parse q) in
    let e2 = Eval.select_elements doc2 (Xparser.parse q) in
    List.sort_uniq Int.compare (e1 @ List.map (fun i -> i + Doc.size doc1) e2)
  in
  List.iter
    (fun q -> Alcotest.(check (list int)) q (expected q) (run q))
    [
      "/site/regions/*/item";
      "//keyword";
      (* structural joins must not leak across documents *)
      "//keyword/ancestor::listitem";
      "/site/open_auctions/open_auction[bidder/date = interval/start]";
      "//item[@id='item0']";
    ];
  (* the Edge store globalises identically *)
  let estore = Edge.create () in
  let estore = Edge.load estore doc1 in
  let estore = Edge.load estore doc2 in
  List.iter
    (fun q ->
      let got =
        match Edge_translate.translate (Xparser.parse q) with
        | None -> []
        | Some stmt -> Edge_translate.result_ids (Engine.run estore.Edge.db stmt)
      in
      Alcotest.(check (list int)) ("edge " ^ q) (expected q) got)
    [ "//keyword/ancestor::listitem"; "/site/regions/*/item" ];
  (* locate maps a global id back to its document *)
  let items = run "//item[@id='item0']" in
  (match items with
   | [ a; b ] ->
     Alcotest.(check int) "first in doc 0" 0 (fst (Loader.locate store a));
     Alcotest.(check int) "second in doc 1" 1 (fst (Loader.locate store b))
   | l -> Alcotest.failf "expected item0 in both docs, got %d" (List.length l))

(* Random cross-engine property over the rich XMark vocabulary: a much
   deeper schema than the fig-1 corpus used by the per-engine suites
   (shared definitions, recursion through parlist/listitem, attributes on
   many relations). *)
let gen_xmark_query =
  let open QCheck.Gen in
  let name =
    oneofl
      [
        "site"; "regions"; "namerica"; "item"; "description"; "parlist"; "listitem";
        "text"; "keyword"; "mailbox"; "mail"; "people"; "person"; "address"; "phone";
        "homepage"; "open_auctions"; "open_auction"; "bidder"; "personref"; "interval";
        "date"; "name"; "closed_auctions"; "closed_auction"; "annotation"; "author";
      ]
  in
  let test = oneof [ name; return "*" ] in
  let step =
    frequency
      [
        4, map (fun t -> "/" ^ t) test;
        4, map (fun t -> "//" ^ t) test;
        1, map (fun t -> "/parent::" ^ t) test;
        1, map (fun t -> "/ancestor::" ^ t) test;
        1, map (fun t -> "/following-sibling::" ^ t) test;
        1, map (fun t -> "/preceding-sibling::" ^ t) test;
      ]
  in
  let predicate =
    oneof
      [
        map (fun n -> "[" ^ n ^ "]") name;
        map (fun n -> "[not(" ^ n ^ ")]") name;
        map (fun n -> "[.//" ^ n ^ "]") name;
        map (fun n -> "[parent::" ^ n ^ "]") name;
        map (fun n -> "[ancestor::" ^ n ^ "]") name;
        return "[@id]";
        return "[@featured = 'yes']";
        return "[@id = 'item0']";
        map2 (fun a b -> "[" ^ a ^ " or " ^ b ^ "]") name name;
      ]
  in
  map2
    (fun first steps ->
      "//" ^ first ^ String.concat "" (List.map (fun (s, p) -> s ^ p) steps))
    name
    (list_size (int_range 0 3) (pair step (oneof [ return ""; predicate ])))

let prop_xmark_cross_engine fx =
  QCheck.Test.make ~count:250 ~name:"random XMark queries agree across engines"
    (QCheck.make ~print:(fun q -> q) gen_xmark_query)
    (fun query ->
      match Xparser.parse query with
      | exception Xparser.Error _ -> QCheck.assume_fail ()
      | expr ->
        ignore expr;
        let expected = run_engine fx `Reference query in
        List.for_all
          (fun (ename, engine) ->
            let got = run_engine fx engine query in
            if got <> expected then
              QCheck.Test.fail_reportf "%s on %s: expected %d nodes, got %d nodes" ename
                query (List.length expected) (List.length got)
            else true)
          engines)

(* count() comparisons are supported by the schema-aware translator and
   the MonetDB simulator (the paper's subset leaves them out; extension
   documented in README). *)
let count_queries fx () =
  List.iter
    (fun q ->
      let expected = run_engine fx `Reference q in
      let via_ppf = run_engine fx `Ppf q in
      let via_monet = run_engine fx `Monet q in
      if via_ppf <> expected then
        Alcotest.failf "ppf on %s: %d vs %d nodes" q (List.length via_ppf)
          (List.length expected);
      if via_monet <> expected then
        Alcotest.failf "monet on %s: %d vs %d nodes" q (List.length via_monet)
          (List.length expected))
    [
      "/site/people/person[count(address) = 1]";
      "/site/regions/*/item[location[contains(., 'france')]]";
      "//person[emailaddress[starts-with(., 'mailto:1')]]";
      "//keyword[string-length(.) > 10]";
      "/site/open_auctions/open_auction[count(bidder) > 2]";
      "/site/regions/*/item[count(incategory) = 2]";
      "//parlist[count(listitem) >= 2]";
      "//person[count(watches/watch) = 1]";
      "//open_auction[count(bidder) = 0]";
    ]

(* The translated plan over a shredded store (path-partitioned by
   default) must execute the fact step as a pruned partition scan and
   surface the pruning in EXPLAIN — the end-to-end golden behind the
   CLI's `ppfx explain` output. *)
let partition_pruning_explain fx () =
  let translator = Translate.create fx.schema_store.Loader.mapping in
  match Translate.translate translator (Xparser.parse "//item/name") with
  | None -> Alcotest.fail "//item/name should translate"
  | Some stmt ->
    let plan = Engine.explain fx.schema_store.Loader.db stmt in
    let contains sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length plan && (String.sub plan i n = sub || go (i + 1))
      in
      go 0
    in
    if not (contains "partition scan") then
      Alcotest.failf "no partition scan in plan:\n%s" plan;
    if not (contains "partitions: scanned") then
      Alcotest.failf "no pruning line in plan:\n%s" plan

let () =
  let fx = Lazy.force xmark_fixture in
  let dfx = Lazy.force dblp_fixture in
  Alcotest.run "integration"
    [
      ( "xmark-cross-engine",
        List.map
          (fun (name, q) -> Alcotest.test_case name `Quick (check_all fx (name, q)))
          Xmark.queries );
      ( "dblp-cross-engine",
        List.map
          (fun (name, q) -> Alcotest.test_case name `Quick (check_all dfx (name, q)))
          Dblp.queries );
      ( "commercial",
        [
          Alcotest.test_case "supports Q23/Q24/QA" `Quick (commercial_subset fx);
          Alcotest.test_case "rejects the rest" `Quick (commercial_rejections fx);
        ] );
      "multi-document", [ Alcotest.test_case "load" `Quick multi_document ];
      "count-extension", [ Alcotest.test_case "ppf and monet" `Quick (count_queries fx) ];
      "twig-extension", [ Alcotest.test_case "twig subset" `Quick (twig_agrees fx) ];
      ( "partition-pruning",
        [
          Alcotest.test_case "explain surfaces pruning" `Quick
            (partition_pruning_explain fx);
        ] );
      ( "random-cross-engine",
        [ QCheck_alcotest.to_alcotest (prop_xmark_cross_engine fx) ] );
    ]

(* Unit and property tests for the POSIX-ERE engine.

   The property tests check the NFA simulation against a naive
   backtracking matcher over random patterns and subjects. *)

module Regex = Ppfx_regex.Regex
module Syntax = Ppfx_regex.Syntax

let check_search pattern subject expected () =
  let re = Regex.compile pattern in
  Alcotest.(check bool)
    (Printf.sprintf "search %S %S" pattern subject)
    expected (Regex.search re subject)

let check_matches pattern subject expected () =
  let re = Regex.compile pattern in
  Alcotest.(check bool)
    (Printf.sprintf "matches %S %S" pattern subject)
    expected (Regex.matches re subject)

let literal_tests =
  [
    "literal found", check_search "abc" "xxabcxx" true;
    "literal missing", check_search "abc" "xxabxcx" false;
    "empty pattern", check_search "" "anything" true;
    "empty subject no match", check_search "a" "" false;
    "empty subject empty pattern", check_search "" "" true;
    "case sensitive", check_search "ABC" "abc" false;
  ]

let metachar_tests =
  [
    "dot matches any", check_search "a.c" "abc" true;
    "dot needs a char", check_matches "a.c" "ac" false;
    "star zero", check_matches "ab*c" "ac" true;
    "star many", check_matches "ab*c" "abbbbc" true;
    "plus needs one", check_matches "ab+c" "ac" false;
    "plus many", check_matches "ab+c" "abbc" true;
    "opt present", check_matches "ab?c" "abc" true;
    "opt absent", check_matches "ab?c" "ac" true;
    "opt not two", check_matches "ab?c" "abbc" false;
    "alt left", check_matches "ab|cd" "ab" true;
    "alt right", check_matches "ab|cd" "cd" true;
    "alt neither", check_matches "ab|cd" "ad" false;
    "group star", check_matches "(ab)*" "ababab" true;
    "group star empty", check_matches "(ab)*" "" true;
    "nested groups", check_matches "((a|b)c)+" "acbc" true;
    "escaped dot", check_matches "a\\.c" "a.c" true;
    "escaped dot literal", check_matches "a\\.c" "abc" false;
    "escaped star", check_search "a\\*" "xa*y" true;
    "escaped slash irrelevant", check_matches "a/b" "a/b" true;
  ]

let class_tests =
  [
    "simple class", check_matches "[abc]" "b" true;
    "class miss", check_matches "[abc]" "d" false;
    "range", check_matches "[a-z]+" "hello" true;
    "range miss", check_matches "[a-z]+" "Hello" false;
    "negated", check_matches "[^/]+" "abc" true;
    "negated miss", check_matches "[^/]+" "a/c" false;
    "class with dash member", check_matches "[a-]" "-" true;
    "leading bracket member", check_matches "[]a]" "]" true;
    "multiple ranges", check_matches "[a-zA-Z0-9]+" "Az09" true;
  ]

let anchor_tests =
  [
    "bol anchored hit", check_search "^abc" "abcdef" true;
    "bol anchored miss", check_search "^abc" "xabc" false;
    "eol anchored hit", check_search "abc$" "xxabc" true;
    "eol anchored miss", check_search "abc$" "abcx" false;
    "both anchors", check_search "^abc$" "abc" true;
    "both anchors miss", check_search "^abc$" "abcd" false;
    "unanchored search mid", check_search "b.d" "abode abcd" true;
  ]

let repeat_tests =
  [
    "exact count hit", check_matches "a{3}" "aaa" true;
    "exact count under", check_matches "a{3}" "aa" false;
    "exact count over", check_matches "a{3}" "aaaa" false;
    "lo only", check_matches "a{2,}" "aaaaa" true;
    "lo only under", check_matches "a{2,}" "a" false;
    "lo hi", check_matches "a{1,3}" "aa" true;
    "lo hi over", check_matches "a{1,3}" "aaaa" false;
    "group repeat", check_matches "(ab){2}" "abab" true;
  ]

(* The regexes of paper Table 1. *)
let paper_table1_tests =
  let path_re = "^.*/B/C$" in
  let t1 = [
    ("//B/C on /A/B/C", path_re, "/A/B/C", true);
    ("//B/C on /A/B/C/D", path_re, "/A/B/C/D", false);
    ("//B/C on /B/C", path_re, "/B/C", true);
    ("/A/B//F hit deep", "^/A/B/(.+/)?F$", "/A/B/C/E/F", true);
    ("/A/B//F hit direct", "^/A/B/(.+/)?F$", "/A/B/F", true);
    ("/A/B//F miss", "^/A/B/(.+/)?F$", "/A/C/F", false);
    ("//C/*/F hit", "^.*/C/[^/]+/F$", "/A/B/C/E/F", true);
    ("//C/*/F miss two levels", "^.*/C/[^/]+/F$", "/A/B/C/D/E/F", false);
    ("backward path", "^.*/A/B/(.+/)?F$", "/A/B/C/E/F", true);
  ]
  in
  List.map
    (fun (name, pattern, subject, expected) -> name, check_search pattern subject expected)
    t1

let parse_error_tests =
  let expect_error pattern () =
    match Regex.compile pattern with
    | _ -> Alcotest.failf "expected parse error for %S" pattern
    | exception Regex.Parse_error _ -> ()
  in
  [
    "unbalanced paren", expect_error "(ab";
    "stray close paren", expect_error "ab)";
    "dangling star", expect_error "*a";
    "dangling backslash", expect_error "ab\\";
    "unterminated class", expect_error "[abc";
    "bad bounds order", expect_error "a{3,1}";
    "bad range order", expect_error "[z-a]";
  ]

(* Naive exponential-time oracle used by the qcheck property. *)
let rec naive_match (r : Syntax.t) (s : string) (i : int) (k : int -> bool) : bool =
  let n = String.length s in
  match r with
  | Syntax.Empty -> k i
  | Syntax.Char c -> i < n && Char.equal s.[i] c && k (i + 1)
  | Syntax.Any -> i < n && k (i + 1)
  | Syntax.Class (neg, items) ->
    i < n
    &&
    let c = s.[i] in
    let hit =
      List.exists
        (function
          | Syntax.Single x -> Char.equal x c
          | Syntax.Range (a, z) -> a <= c && c <= z)
        items
    in
    (if neg then not hit else hit) && k (i + 1)
  | Syntax.Seq (a, b) -> naive_match a s i (fun j -> naive_match b s j k)
  | Syntax.Alt (a, b) -> naive_match a s i k || naive_match b s i k
  | Syntax.Star a ->
    let rec loop i seen =
      k i
      || naive_match a s i (fun j -> (not (List.mem j seen)) && loop j (j :: seen))
    in
    loop i [ i ]
  | Syntax.Plus a -> naive_match (Syntax.Seq (a, Syntax.Star a)) s i k
  | Syntax.Opt a -> k i || naive_match a s i k
  | Syntax.Repeat (a, lo, hi) ->
    let rec mand cnt i =
      if cnt = 0 then opt (match hi with None -> -1 | Some h -> h - lo) i
      else naive_match a s i (fun j -> mand (cnt - 1) j)
    and opt budget i =
      if budget = 0 then k i
      else
        k i
        || naive_match a s i (fun j ->
               if j = i then k i else opt (if budget < 0 then budget else budget - 1) j)
    in
    mand lo i
  | Syntax.Bol -> i = 0 && k i
  | Syntax.Eol -> i = n && k i

let naive_search r s =
  let n = String.length s in
  let rec try_at i = i <= n && (naive_match r s i (fun _ -> true) || try_at (i + 1)) in
  try_at 0

(* Random pattern ASTs kept small so the naive oracle stays fast. *)
let gen_regex =
  let open QCheck.Gen in
  let gen_char = map (fun i -> Char.chr (97 + i)) (int_bound 3) in
  sized_size (int_bound 8) @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            map (fun c -> Syntax.Char c) gen_char;
            return Syntax.Any;
            return Syntax.Empty;
            map2 (fun neg c -> Syntax.Class (neg, [ Syntax.Single c ])) bool gen_char;
          ]
      else
        oneof
          [
            map2 (fun a b -> Syntax.Seq (a, b)) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Syntax.Alt (a, b)) (self (n / 2)) (self (n / 2));
            map (fun a -> Syntax.Star a) (self (n - 1));
            map (fun a -> Syntax.Plus a) (self (n - 1));
            map (fun a -> Syntax.Opt a) (self (n - 1));
            map (fun c -> Syntax.Char c) gen_char;
          ])

let gen_subject =
  QCheck.Gen.(string_size ~gen:(map (fun i -> Char.chr (97 + i)) (int_bound 3)) (int_bound 10))

let prop_nfa_vs_naive =
  QCheck.Test.make ~count:2000 ~name:"NFA search agrees with backtracking oracle"
    (QCheck.make
       ~print:(fun (r, s) -> Printf.sprintf "pattern %s subject %S" (Syntax.to_string r) s)
       (QCheck.Gen.pair gen_regex gen_subject))
    (fun (r, s) ->
      let via_nfa =
        let re = Regex.compile (Syntax.to_string r) in
        Regex.search re s
      in
      via_nfa = naive_search r s)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"print/parse round-trip"
    (QCheck.make ~print:Syntax.to_string gen_regex)
    (fun r ->
      let printed = Syntax.to_string r in
      let reparsed = Regex.ast (Regex.compile printed) in
      (* Round-tripping may rebalance Seq/Alt nesting; compare by observable
         behaviour on a deterministic set of subjects. *)
      let subjects = [ ""; "a"; "b"; "ab"; "ba"; "aab"; "abab"; "bbb"; "aaba" ] in
      List.for_all (fun s -> naive_search r s = naive_search reparsed s) subjects)

let prop_quote_literal =
  QCheck.Test.make ~count:500 ~name:"quote makes any string match itself"
    QCheck.(string_of_size (QCheck.Gen.int_bound 20))
    (fun s ->
      (* Exclude newline oddities: our subjects are path strings. *)
      let re = Regex.compile ("^" ^ Regex.quote s ^ "$") in
      Regex.search re s)

(* ------------------------------------------------------------------ *)
(* Shared compile cache                                                *)
(* ------------------------------------------------------------------ *)

let cache_tests =
  [
    ( "hit and miss accounting",
      fun () ->
        Regex.cache_clear ();
        let a = Regex.compile_cached "^/(.+/)?keyword$" in
        let b = Regex.compile_cached "^/(.+/)?keyword$" in
        let c = Regex.compile_cached "^/site(/.+)?$" in
        Alcotest.(check int) "misses" 2 (Regex.cache_misses ());
        Alcotest.(check int) "hits" 1 (Regex.cache_hits ());
        Alcotest.(check int) "size" 2 (Regex.cache_size ());
        Alcotest.(check bool) "same behaviour" true
          (Regex.search a "/a/keyword" && Regex.search b "/a/keyword"
          && Regex.search c "/site/x") );
    ( "cached handles are independent",
      fun () ->
        Regex.cache_clear ();
        (* Each call returns a fresh handle (private lazy-DFA state), so a
           handle can be used while another for the same pattern is mid-
           search on a different domain. Equality of observable behaviour
           with an uncached compile is the contract. *)
        let cached = Regex.compile_cached "^/a/(.+/)?b$" in
        let plain = Regex.compile "^/a/(.+/)?b$" in
        List.iter
          (fun s ->
            Alcotest.(check bool) s (Regex.search plain s) (Regex.search cached s))
          [ "/a/b"; "/a/x/b"; "/a/x/y/b"; "/b"; "/a/bc"; "" ] );
    ( "parse errors are not cached",
      fun () ->
        Regex.cache_clear ();
        (match Regex.compile_cached "(" with
        | exception Regex.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected Parse_error");
        Alcotest.(check int) "size unchanged" 0 (Regex.cache_size ());
        (* and the error is deterministic on retry *)
        (match Regex.compile_cached "(" with
        | exception Regex.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected Parse_error again") );
    ( "clear resets counters",
      fun () ->
        Regex.cache_clear ();
        ignore (Regex.compile_cached "abc");
        ignore (Regex.compile_cached "abc");
        Regex.cache_clear ();
        Alcotest.(check int) "hits" 0 (Regex.cache_hits ());
        Alcotest.(check int) "misses" 0 (Regex.cache_misses ());
        Alcotest.(check int) "size" 0 (Regex.cache_size ()) );
    ( "concurrent domains share the cache safely",
      fun () ->
        Regex.cache_clear ();
        let patterns =
          [| "^/(.+/)?keyword$"; "^/site(/.+)?$"; "^/a/(.+/)?b$"; "abc" |]
        in
        let subject = "/site/regions/item/keyword" in
        let expected = Array.map (fun p -> Regex.search (Regex.compile p) subject) patterns in
        let worker () =
          for i = 0 to 99 do
            let j = i mod Array.length patterns in
            let re = Regex.compile_cached patterns.(j) in
            assert (Regex.search re subject = expected.(j))
          done
        in
        let domains = List.init 4 (fun _ -> Domain.spawn worker) in
        List.iter Domain.join domains;
        Alcotest.(check int) "only one miss per pattern"
          (Array.length patterns) (Regex.cache_misses ());
        Alcotest.(check int) "size" (Array.length patterns) (Regex.cache_size ()) );
  ]

(* ------------------------------------------------------------------ *)
(* Frozen DFAs and required-literal extraction                         *)
(* ------------------------------------------------------------------ *)

let frozen_tests =
  [
    ( "compile_cached handles are frozen",
      fun () ->
        Regex.cache_clear ();
        let re = Regex.compile_cached "^/(.+/)?keyword$" in
        Alcotest.(check bool) "frozen" true (Regex.has_frozen re);
        Alcotest.(check bool) "lazy compile is not" false
          (Regex.has_frozen (Regex.compile "^/(.+/)?keyword$")) );
    ( "frozen agrees with lazy on paper paths",
      fun () ->
        Regex.cache_clear ();
        List.iter
          (fun (pattern, subject) ->
            let frozen = Regex.compile_cached pattern in
            let lazy_ = Regex.compile pattern in
            Alcotest.(check bool)
              (Printf.sprintf "search %S %S" pattern subject)
              (Regex.search lazy_ subject)
              (Regex.search frozen subject);
            Alcotest.(check bool)
              (Printf.sprintf "matches %S %S" pattern subject)
              (Regex.matches lazy_ subject)
              (Regex.matches frozen subject))
          [
            ("^.*/listitem(/.+)?/keyword$", "/site/listitem/keyword");
            ("^.*/listitem(/.+)?/keyword$", "/site/listitem/x/keyword");
            ("^.*/listitem(/.+)?/keyword$", "/keyword");
            ("^/(.+/)?keyword$", "/a/b/keyword");
            ("france", "in france today");
            ("^mailto:1", "mailto:1@example.org");
            ("^mailto:1", "xmailto:1");
            ("a{2,3}", "aaa");
            ("", "");
          ] );
  ]

(* Frozen execution must be byte-for-byte equivalent to both the lazy DFA
   and the backtracking oracle on arbitrary patterns. *)
let prop_frozen_vs_lazy_vs_naive =
  QCheck.Test.make ~count:2000
    ~name:"frozen DFA agrees with lazy DFA and backtracking oracle"
    (QCheck.make
       ~print:(fun (r, s) -> Printf.sprintf "pattern %s subject %S" (Syntax.to_string r) s)
       (QCheck.Gen.pair gen_regex gen_subject))
    (fun (r, s) ->
      let pattern = Syntax.to_string r in
      let frozen = Regex.compile_cached pattern in
      let lazy_ = Regex.compile pattern in
      Regex.search frozen s = naive_search r s
      && Regex.search frozen s = Regex.search lazy_ s
      && Regex.matches frozen s = Regex.matches lazy_ s)

let check_literals pattern expected () =
  let got = Regex.required_literals (Regex.compile pattern) in
  Alcotest.(check (list (list string)))
    (Printf.sprintf "required_literals %S" pattern)
    (List.sort compare expected) (List.sort compare got)

let literal_extraction_tests =
  [
    (* The two regexes Q6's path filters compile to. *)
    "Q6 descendant filter", check_literals "^/(.+/)?keyword$" [ [ "keyword" ] ];
    ( "Q6 ancestor filter",
      check_literals "^.*/listitem(/.+)?/keyword$"
        [ [ "/listitem" ]; [ "/keyword" ] ] );
    (* XE1 contains() / XE2 starts-with() value predicates. *)
    "bare literal", check_literals "france" [ [ "france" ] ];
    "anchored prefix", check_literals "^mailto:1" [ [ "mailto:1" ] ];
    (* Alternation: union within a group. *)
    "alt of literals", check_literals "abcd|efgh" [ [ "abcd"; "efgh" ] ];
    ( "alt inside seq",
      check_literals "xx(abcd|efgh)yy" [ [ "xxabcdyy"; "xxefghyy" ] ] );
    (* Nothing required. *)
    "dot star", check_literals ".*" [];
    "short runs dropped", check_literals "^a.b$" [];
    "opt group not required", check_literals "(abcd)?" [];
    (* Plus / bounded repeat force one copy. *)
    "plus required", check_literals "(abcd)+" [ [ "abcd" ] ];
    "repeat required", check_literals "(abcd){2,3}" [ [ "abcd" ] ];
    "repeat zero not required", check_literals "(abcd){0,3}" [];
    (* Classes break runs but keep both sides. *)
    ( "class splits runs",
      check_literals "abcd[0-9]efgh" [ [ "abcd" ]; [ "efgh" ] ] );
  ]

(* Soundness: every extracted group is truly required — whenever the
   pattern accepts a subject, each group has an alternative occurring as
   a substring. Checked against random pattern/subject pairs. *)
let contains_substring subject lit =
  let n = String.length subject and m = String.length lit in
  let rec go i = i + m <= n && (String.sub subject i m = lit || go (i + 1)) in
  m = 0 || go 0

let prop_literals_sound =
  QCheck.Test.make ~count:2000
    ~name:"required literals occur in every accepted subject"
    (QCheck.make
       ~print:(fun (r, s) -> Printf.sprintf "pattern %s subject %S" (Syntax.to_string r) s)
       (QCheck.Gen.pair gen_regex gen_subject))
    (fun (r, s) ->
      let re = Regex.compile (Syntax.to_string r) in
      (not (Regex.search re s))
      || List.for_all
           (fun group -> List.exists (contains_substring s) group)
           (Regex.required_literals re))

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "regex"
    [
      "literals", List.map tc literal_tests;
      "metachars", List.map tc metachar_tests;
      "classes", List.map tc class_tests;
      "anchors", List.map tc anchor_tests;
      "repeats", List.map tc repeat_tests;
      "paper-table1", List.map tc paper_table1_tests;
      "parse-errors", List.map tc parse_error_tests;
      "compile-cache", List.map tc cache_tests;
      "frozen-dfa", List.map tc frozen_tests;
      "required-literals", List.map tc literal_extraction_tests;
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_nfa_vs_naive;
            prop_print_parse_roundtrip;
            prop_quote_literal;
            prop_frozen_vs_lazy_vs_naive;
            prop_literals_sound;
          ] );
    ]

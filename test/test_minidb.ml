(* Tests for the relational substrate: values, B+tree, tables, and the SQL
   planner/executor (checked against the naive cross-product oracle). *)

module Value = Ppfx_minidb.Value
module Btree = Ppfx_minidb.Btree
module Table = Ppfx_minidb.Table
module Database = Ppfx_minidb.Database
module Sql = Ppfx_minidb.Sql
module Engine = Ppfx_minidb.Engine

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let value_tests =
  [
    ( "numeric coercion in sql compare",
      fun () ->
        Alcotest.(check (option int)) "int vs str" (Some 0)
          (Value.compare_sql (Value.Int 2) (Value.Str "2"));
        Alcotest.(check (option int)) "str vs float" (Some (-1))
          (Option.map (fun c -> compare c 0)
             (Value.compare_sql (Value.Str "1.5") (Value.Float 2.0))) );
    ( "unparsable string vs number is unknown",
      fun () ->
        Alcotest.(check (option int)) "nan" None
          (Value.compare_sql (Value.Str "abc") (Value.Int 2)) );
    ( "null propagates",
      fun () ->
        Alcotest.(check (option int)) "null" None
          (Value.compare_sql Value.Null (Value.Int 1)) );
    ( "strings compare as strings",
      fun () ->
        Alcotest.(check bool) "10 < 9 as strings" true
          (Value.compare_sql (Value.Str "10") (Value.Str "9") = Some (-1)) );
    ( "binary compares bytewise",
      fun () ->
        Alcotest.(check bool) "bin order" true
          (Value.compare_sql (Value.Bin "\x00\x01") (Value.Bin "\x00\x02") = Some (-1)) );
    ( "concat bin absorbs",
      fun () ->
        (match Value.concat (Value.Bin "\x00") (Value.Str "\xFF") with
         | Value.Bin s -> Alcotest.(check string) "concat" "\x00\xFF" s
         | v -> Alcotest.failf "unexpected %s" (Value.to_string v));
        (match Value.concat Value.Null (Value.Str "x") with
         | Value.Null -> ()
         | v -> Alcotest.failf "null concat gave %s" (Value.to_string v)) );
  ]

(* ------------------------------------------------------------------ *)
(* B+tree                                                              *)
(* ------------------------------------------------------------------ *)

let btree_unit_tests =
  [
    ( "insert and find",
      fun () ->
        let t = Btree.create ~width:1 () in
        List.iteri (fun i k -> Btree.insert t [| Value.Int k |] i) [ 5; 3; 9; 3; 7 ];
        Alcotest.(check (list int)) "find 3" [ 1; 3 ]
          (List.sort compare (Btree.find_equal t [| Value.Int 3 |]));
        Alcotest.(check (list int)) "find missing" [] (Btree.find_equal t [| Value.Int 4 |]) );
    ( "range scan",
      fun () ->
        let t = Btree.create ~width:1 () in
        for i = 0 to 99 do
          Btree.insert t [| Value.Int i |] i
        done;
        let rows =
          Btree.range t
            ~lo:(Some { Btree.key = [| Value.Int 10 |]; inclusive = true })
            ~hi:(Some { Btree.key = [| Value.Int 15 |]; inclusive = false })
        in
        Alcotest.(check (list int)) "range" [ 10; 11; 12; 13; 14 ] rows );
    ( "prefix bound on composite key",
      fun () ->
        let t = Btree.create ~width:2 () in
        let k a b = [| Value.Str a; Value.Int b |] in
        List.iteri
          (fun i (a, b) -> Btree.insert t (k a b) i)
          [ "x", 1; "x", 2; "y", 1; "y", 3; "z", 1 ];
        Alcotest.(check (list int)) "all y by prefix" [ 2; 3 ]
          (Btree.find_equal t [| Value.Str "y" |]) );
    ( "deep tree stays balanced",
      fun () ->
        let t = Btree.create ~order:4 ~width:1 () in
        for i = 0 to 999 do
          Btree.insert t [| Value.Int i |] i
        done;
        Alcotest.(check int) "count" 1000 (Btree.length t);
        Alcotest.(check bool) "depth sane" true (Btree.depth t <= 8);
        (match Btree.check_invariants t with
         | Ok () -> ()
         | Error m -> Alcotest.fail m) );
    ( "iter visits in order",
      fun () ->
        let t = Btree.create ~width:1 () in
        List.iteri (fun i k -> Btree.insert t [| Value.Int k |] i) [ 4; 2; 8; 6; 0 ];
        let keys = ref [] in
        Btree.iter (fun k _ -> keys := k.(0) :: !keys) t;
        Alcotest.(check bool) "sorted" true
          (List.rev !keys = [ Value.Int 0; Value.Int 2; Value.Int 4; Value.Int 6; Value.Int 8 ]) );
  ]

let btree_delete_tests =
  [
    ( "delete removes one entry",
      fun () ->
        let t = Btree.create ~width:1 () in
        List.iteri (fun i k -> Btree.insert t [| Value.Int k |] i) [ 5; 3; 5; 7 ];
        Alcotest.(check bool) "removed" true (Btree.delete t [| Value.Int 5 |] 0);
        Alcotest.(check (list int)) "other 5 remains" [ 2 ]
          (Btree.find_equal t [| Value.Int 5 |]);
        Alcotest.(check bool) "absent now" false (Btree.delete t [| Value.Int 5 |] 0);
        Alcotest.(check int) "count" 3 (Btree.length t) );
    ( "delete rebalances deep trees",
      fun () ->
        let t = Btree.create ~order:4 ~width:1 () in
        for i = 0 to 499 do
          Btree.insert t [| Value.Int i |] i
        done;
        (* Remove every other key, then a contiguous block. *)
        for i = 0 to 499 do
          if i mod 2 = 0 then
            Alcotest.(check bool) "removed" true (Btree.delete t [| Value.Int i |] i)
        done;
        for i = 100 to 199 do
          if i mod 2 = 1 then ignore (Btree.delete t [| Value.Int i |] i)
        done;
        (match Btree.check_invariants t with
         | Ok () -> ()
         | Error m -> Alcotest.fail m);
        Alcotest.(check int) "count" 200 (Btree.length t);
        Alcotest.(check (list int)) "range skips deleted" [ 201; 203 ]
          (Btree.range t
             ~lo:(Some { Btree.key = [| Value.Int 200 |]; inclusive = true })
             ~hi:(Some { Btree.key = [| Value.Int 203 |]; inclusive = true })) );
    ( "delete everything returns to an empty tree",
      fun () ->
        let t = Btree.create ~order:4 ~width:1 () in
        for i = 0 to 99 do
          Btree.insert t [| Value.Int i |] i
        done;
        for i = 0 to 99 do
          ignore (Btree.delete t [| Value.Int i |] i)
        done;
        Alcotest.(check int) "empty" 0 (Btree.length t);
        Alcotest.(check int) "depth collapses" 1 (Btree.depth t);
        (match Btree.check_invariants t with
         | Ok () -> ()
         | Error m -> Alcotest.fail m) );
  ]

(* Property: a random interleaving of inserts and deletes agrees with a
   multiset oracle and preserves every structural invariant. *)
let prop_btree_ops =
  let gen =
    QCheck.Gen.(
      pair (int_range 4 12)
        (list_size (int_range 0 400)
           (pair bool (int_range 0 30))))
  in
  QCheck.Test.make ~count:300 ~name:"insert/delete agree with multiset oracle"
    (QCheck.make
       ~print:(fun (order, ops) ->
         Printf.sprintf "order=%d ops=[%s]" order
           (String.concat ";"
              (List.map (fun (ins, k) -> Printf.sprintf "%s%d" (if ins then "+" else "-") k) ops)))
       gen)
    (fun (order, ops) ->
      let t = Btree.create ~order ~width:1 () in
      let oracle : (int, int list) Hashtbl.t = Hashtbl.create 16 in
      let next_row = ref 0 in
      List.iter
        (fun (ins, k) ->
          if ins then begin
            let row = !next_row in
            incr next_row;
            Btree.insert t [| Value.Int k |] row;
            Hashtbl.replace oracle k (row :: Option.value ~default:[] (Hashtbl.find_opt oracle k))
          end
          else begin
            (* delete one row of key k if present *)
            match Hashtbl.find_opt oracle k with
            | Some (row :: rest) ->
              if not (Btree.delete t [| Value.Int k |] row) then
                QCheck.Test.fail_report "delete of present entry returned false";
              if rest = [] then Hashtbl.remove oracle k else Hashtbl.replace oracle k rest
            | Some [] | None ->
              if Btree.delete t [| Value.Int k |] 999999 then
                QCheck.Test.fail_report "delete of absent entry returned true"
          end)
        ops;
      (match Btree.check_invariants t with
       | Ok () -> ()
       | Error m -> QCheck.Test.fail_report m);
      Hashtbl.fold
        (fun k rows ok ->
          ok
          && List.sort compare (Btree.find_equal t [| Value.Int k |])
             = List.sort compare rows)
        oracle true)

(* Property: B+tree range scans agree with a sorted-list oracle under
   random insertion orders, orders, and bounds. *)
let prop_btree_oracle =
  let gen =
    QCheck.Gen.(
      triple
        (list_size (int_range 0 300) (int_range 0 50))
        (int_range 4 16)
        (pair (opt (pair (int_range 0 50) bool)) (opt (pair (int_range 0 50) bool))))
  in
  QCheck.Test.make ~count:500 ~name:"range scans agree with sorted-list oracle"
    (QCheck.make
       ~print:(fun (keys, order, _) ->
         Printf.sprintf "order=%d keys=[%s]" order
           (String.concat ";" (List.map string_of_int keys)))
       gen)
    (fun (keys, order, (lo, hi)) ->
      let t = Btree.create ~order ~width:1 () in
      List.iteri (fun i k -> Btree.insert t [| Value.Int k |] i) keys;
      (match Btree.check_invariants t with
       | Ok () -> ()
       | Error m -> QCheck.Test.fail_report m);
      let bound = Option.map (fun (k, incl) -> { Btree.key = [| Value.Int k |]; inclusive = incl }) in
      let got = List.sort compare (Btree.range t ~lo:(bound lo) ~hi:(bound hi)) in
      let keep k =
        (match lo with
         | None -> true
         | Some (b, true) -> k >= b
         | Some (b, false) -> k > b)
        && (match hi with None -> true | Some (b, true) -> k <= b | Some (b, false) -> k < b)
      in
      let expected =
        List.filteri (fun _ _ -> true) keys
        |> List.mapi (fun i k -> i, k)
        |> List.filter (fun (_, k) -> keep k)
        |> List.map fst
        |> List.sort compare
      in
      got = expected)

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let people_db () =
  let db = Database.create () in
  let people =
    Database.create_table db ~name:"people"
      ~columns:
        [
          { Table.name = "id"; ty = Value.Tint };
          { Table.name = "name"; ty = Value.Tstr };
          { Table.name = "dept_id"; ty = Value.Tint };
          { Table.name = "salary"; ty = Value.Tint };
        ]
  in
  let depts =
    Database.create_table db ~name:"depts"
      ~columns:
        [ { Table.name = "id"; ty = Value.Tint }; { Table.name = "name"; ty = Value.Tstr } ]
  in
  List.iter
    (fun (id, name) ->
      ignore (Table.insert depts [| Value.Int id; Value.Str name |]))
    [ 1, "eng"; 2, "sales"; 3, "legal" ];
  List.iter
    (fun (id, name, dept, sal) ->
      ignore
        (Table.insert people [| Value.Int id; Value.Str name; Value.Int dept; Value.Int sal |]))
    [
      1, "ada", 1, 120; 2, "bob", 1, 90; 3, "cat", 2, 80; 4, "dan", 2, 85;
      5, "eve", 3, 100; 6, "fay", 1, 110;
    ];
  Table.create_index people [ "id" ];
  Table.create_index people [ "dept_id" ];
  Table.create_index depts [ "id" ];
  db

let table_tests =
  [
    ( "insert type checking",
      fun () ->
        let t =
          Table.create ~name:"t"
            ~columns:[ { Table.name = "a"; ty = Value.Tint } ] ()
        in
        (match Table.insert t [| Value.Str "no" |] with
         | _ -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ());
        (* NULL is allowed in any column. *)
        ignore (Table.insert t [| Value.Null |]);
        Alcotest.(check int) "row count" 1 (Table.row_count t) );
    ( "index backfill and maintenance",
      fun () ->
        let t =
          Table.create ~name:"t"
            ~columns:[ { Table.name = "a"; ty = Value.Tint } ] ()
        in
        ignore (Table.insert t [| Value.Int 1 |]);
        Table.create_index t [ "a" ];
        ignore (Table.insert t [| Value.Int 1 |]);
        (match Table.index_on t [ "a" ] with
         | Some tree ->
           Alcotest.(check int) "both rows indexed" 2
             (List.length (Btree.find_equal tree [| Value.Int 1 |]))
         | None -> Alcotest.fail "index missing") );
    ( "index_with_prefix finds composite index",
      fun () ->
        let t =
          Table.create ~name:"t"
            ~columns:
              [
                { Table.name = "a"; ty = Value.Tint };
                { Table.name = "b"; ty = Value.Tint };
              ]
            ()
        in
        Table.create_index t [ "a"; "b" ];
        Alcotest.(check bool) "prefix a" true (Table.index_with_prefix t [ "a" ] <> None);
        Alcotest.(check bool) "prefix b" true (Table.index_with_prefix t [ "b" ] = None) );
  ]

(* ------------------------------------------------------------------ *)
(* SQL execution                                                       *)
(* ------------------------------------------------------------------ *)

let col a c = Sql.Col (a, c)
let int_ i = Sql.Const (Value.Int i)
let str_ s = Sql.Const (Value.Str s)

let select ?(distinct = false) ?where ?(order = []) projections from =
  {
    Sql.distinct;
    projections;
    from;
    where;
    order_by = order;
  }

let run db sel = (Engine.run db (Sql.Select sel)).Engine.rows

let sql_tests =
  [
    ( "filter with index",
      fun () ->
        let db = people_db () in
        let sel =
          select
            [ col "p" "name", "name" ]
            [ "people", "p" ]
            ~where:(Sql.Cmp (Sql.Eq, col "p" "id", int_ 3))
        in
        Alcotest.(check int) "one row" 1 (List.length (run db sel));
        (match run db sel with
         | [ [| Value.Str "cat" |] ] -> ()
         | _ -> Alcotest.fail "wrong row") );
    ( "equijoin",
      fun () ->
        let db = people_db () in
        let sel =
          select
            [ col "p" "name", "person"; col "d" "name", "dept" ]
            [ "people", "p"; "depts", "d" ]
            ~where:
              (Sql.And
                 ( Sql.Cmp (Sql.Eq, col "p" "dept_id", col "d" "id"),
                   Sql.Cmp (Sql.Eq, col "d" "name", str_ "eng") ))
            ~order:[ col "p" "id" ]
        in
        let names = List.map (fun r -> r.(0)) (run db sel) in
        Alcotest.(check bool) "eng members" true
          (names = [ Value.Str "ada"; Value.Str "bob"; Value.Str "fay" ]) );
    ( "range predicate",
      fun () ->
        let db = people_db () in
        let sel =
          select
            [ col "p" "name", "name" ]
            [ "people", "p" ]
            ~where:(Sql.Cmp (Sql.Ge, col "p" "salary", int_ 100))
            ~order:[ col "p" "name" ]
        in
        Alcotest.(check int) "3 rows" 3 (List.length (run db sel)) );
    ( "between",
      fun () ->
        let db = people_db () in
        let sel =
          select
            [ col "p" "id", "id" ]
            [ "people", "p" ]
            ~where:(Sql.Between (col "p" "salary", int_ 85, int_ 100))
        in
        Alcotest.(check int) "3 rows" 3 (List.length (run db sel)) );
    ( "exists correlated",
      fun () ->
        let db = people_db () in
        (* departments with someone earning > 100 *)
        let sub =
          select
            [ Sql.Const Value.Null, "null" ]
            [ "people", "p" ]
            ~where:
              (Sql.And
                 ( Sql.Cmp (Sql.Eq, col "p" "dept_id", col "d" "id"),
                   Sql.Cmp (Sql.Gt, col "p" "salary", int_ 100) ))
        in
        let sel =
          select
            [ col "d" "name", "name" ]
            [ "depts", "d" ]
            ~where:(Sql.Exists sub)
            ~order:[ col "d" "name" ]
        in
        let names = List.map (fun r -> r.(0)) (run db sel) in
        Alcotest.(check bool) "only eng" true (names = [ Value.Str "eng" ]) );
    ( "not exists",
      fun () ->
        let db = people_db () in
        let sub =
          select
            [ Sql.Const Value.Null, "null" ]
            [ "people", "p" ]
            ~where:
              (Sql.And
                 ( Sql.Cmp (Sql.Eq, col "p" "dept_id", col "d" "id"),
                   Sql.Cmp (Sql.Gt, col "p" "salary", int_ 100) ))
        in
        let sel =
          select
            [ col "d" "name", "name" ]
            [ "depts", "d" ]
            ~where:(Sql.Not (Sql.Exists sub))
            ~order:[ col "d" "name" ]
        in
        let names = List.map (fun r -> r.(0)) (run db sel) in
        Alcotest.(check bool) "sales and legal" true
          (names = [ Value.Str "legal"; Value.Str "sales" ]) );
    ( "regexp_like",
      fun () ->
        let db = people_db () in
        let sel =
          select
            [ col "p" "name", "name" ]
            [ "people", "p" ]
            ~where:(Sql.Regexp_like (col "p" "name", "^[abc]"))
        in
        Alcotest.(check int) "ada bob cat" 3 (List.length (run db sel)) );
    ( "distinct",
      fun () ->
        let db = people_db () in
        let sel =
          select ~distinct:true [ col "p" "dept_id", "dept_id" ] [ "people", "p" ]
            ~order:[ col "p" "dept_id" ]
        in
        Alcotest.(check int) "3 departments" 3 (List.length (run db sel)) );
    ( "union dedupes",
      fun () ->
        let db = people_db () in
        let b1 =
          select
            [ col "p" "name", "name" ]
            [ "people", "p" ]
            ~where:(Sql.Cmp (Sql.Eq, col "p" "dept_id", int_ 1))
        in
        let b2 =
          select
            [ col "p" "name", "name" ]
            [ "people", "p" ]
            ~where:(Sql.Cmp (Sql.Ge, col "p" "salary", int_ 100))
        in
        let result = Engine.run db (Sql.Union ([ b1; b2 ], [ 0 ])) in
        (* eng: ada bob fay; >=100: ada eve fay -> distinct = 4 *)
        Alcotest.(check int) "4 names" 4 (List.length result.Engine.rows) );
    ( "order by descending ids via sort key",
      fun () ->
        let db = people_db () in
        let sel =
          select [ col "p" "id", "id" ] [ "people", "p" ] ~order:[ col "p" "id" ]
        in
        let ids = List.map (fun r -> r.(0)) (run db sel) in
        Alcotest.(check bool) "ascending" true
          (ids = List.map (fun i -> Value.Int i) [ 1; 2; 3; 4; 5; 6 ]) );
    ( "union arity mismatch is a runtime error",
      fun () ->
        let db = people_db () in
        let b1 = select [ col "p" "id", "id" ] [ "people", "p" ] in
        let b2 =
          select [ col "p" "id", "id"; col "p" "name", "name" ] [ "people", "p" ]
        in
        (match Engine.run db (Sql.Union ([ b1; b2 ], [])) with
         | _ -> Alcotest.fail "expected Runtime_error"
         | exception Engine.Runtime_error _ -> ()) );
    ( "order by binary column uses bytewise order",
      fun () ->
        let db = Database.create () in
        let t =
          Database.create_table db ~name:"b"
            ~columns:
              [ { Table.name = "id"; ty = Value.Tint }; { Table.name = "d"; ty = Value.Tbin } ]
        in
        List.iter
          (fun (i, d) -> ignore (Table.insert t [| Value.Int i; Value.Bin d |]))
          [ 1, ""; 2, "ÿ"; 3, "" ];
        let sel =
          select [ col "x" "id", "id" ] [ "b", "x" ] ~order:[ col "x" "d" ]
        in
        let ids = List.map (fun r -> r.(0)) (run db sel) in
        Alcotest.(check bool) "bytewise" true
          (ids = [ Value.Int 3; Value.Int 2; Value.Int 1 ]) );
    ( "runtime error on unknown column",
      fun () ->
        let db = people_db () in
        let sel = select [ col "p" "nope", "x" ] [ "people", "p" ] in
        match run db sel with
        | _ -> Alcotest.fail "expected Runtime_error"
        | exception Engine.Runtime_error _ -> () );
    ( "tombstone delete hides rows from scans and indexes",
      fun () ->
        let db = people_db () in
        let people = Database.table db "people" in
        Alcotest.(check bool) "deleted" true (Table.delete people 2);
        Alcotest.(check bool) "already gone" false (Table.delete people 2);
        Alcotest.(check int) "live" 5 (Table.live_count people);
        let visible = ref 0 in
        Table.iter_rows (fun _ _ -> incr visible) people;
        Alcotest.(check int) "scan skips tombstone" 5 !visible;
        (* The engine no longer sees the row either (row id 2 holds
           person id 3). *)
        let sel =
          select
            [ col "p" "name", "name" ]
            [ "people", "p" ]
            ~where:(Sql.Cmp (Sql.Eq, col "p" "id", int_ 3))
        in
        Alcotest.(check int) "index entry gone" 0 (List.length (run db sel)) );
    ( "invalid regex raises Runtime_error",
      fun () ->
        let db = people_db () in
        let sel =
          select
            [ col "p" "name", "name" ]
            [ "people", "p" ]
            ~where:(Sql.Regexp_like (col "p" "name", "(unclosed"))
        in
        (match run db sel with
         | _ -> Alcotest.fail "expected Runtime_error"
         | exception Engine.Runtime_error _ -> ()) );
    ( "decorrelated exists semi-join",
      fun () ->
        let db = people_db () in
        (* names of people who share a department with someone earning
           exactly 100: correlated equality on dept_id decorrelates into a
           hash semi-join. *)
        let sub =
          select
            [ Sql.Const Value.Null, "null" ]
            [ "people", "q" ]
            ~where:
              (Sql.And
                 ( Sql.Cmp (Sql.Eq, col "q" "dept_id", col "p" "dept_id"),
                   Sql.Cmp (Sql.Eq, col "q" "salary", int_ 100) ))
        in
        let sel =
          select
            [ col "p" "name", "name" ]
            [ "people", "p" ]
            ~where:(Sql.Exists sub)
            ~order:[ col "p" "id" ]
        in
        let names = List.map (fun r -> r.(0)) (run db sel) in
        Alcotest.(check bool) "dept 3 members" true (names = [ Value.Str "eve" ]);
        (* Same query through the naive oracle. *)
        let naive = (Engine.run_naive db (Sql.Select sel)).Engine.rows in
        Alcotest.(check bool) "naive agrees" true
          (List.map (fun r -> r.(0)) naive = names) );
    ( "prefix lookup access path for ancestor joins",
      fun () ->
        (* dewey-style prefixes: e BETWEEN col AND col || x'FF' *)
        let db = Database.create () in
        let t =
          Database.create_table db ~name:"n"
            ~columns:
              [ { Table.name = "id"; ty = Value.Tint }; { Table.name = "d"; ty = Value.Tbin } ]
        in
        List.iter
          (fun (id, d) -> ignore (Table.insert t [| Value.Int id; Value.Bin d |]))
          [ 1, ""; 2, ""; 3, ""; 4, ""; 5, "" ];
        Table.create_index t [ "d" ];
        (* ancestors of the row with d = 01 02 03 *)
        let sel =
          select
            [ col "a" "id", "id" ]
            [ "n", "a"; "n", "x" ]
            ~where:
              (Sql.And
                 ( Sql.Cmp (Sql.Eq, col "x" "id", int_ 3),
                   Sql.Between
                     ( col "x" "d",
                       col "a" "d",
                       Sql.Concat (col "a" "d", Sql.Const (Value.Bin "ÿ")) ) ))
            ~order:[ col "a" "id" ]
        in
        let plan = Engine.explain db (Sql.Select sel) in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "uses prefix lookups" true (contains plan "prefix lookups");
        let ids = List.map (fun r -> r.(0)) (run db sel) in
        Alcotest.(check bool) "ancestors (incl. self)" true
          (ids = [ Value.Int 1; Value.Int 2; Value.Int 3 ]) );
    ( "profiled execution reports per-step row counts",
      fun () ->
        let db = people_db () in
        let sel =
          select
            [ col "p" "name", "person"; col "d" "name", "dept" ]
            [ "people", "p"; "depts", "d" ]
            ~where:
              (Sql.And
                 ( Sql.Cmp (Sql.Eq, col "p" "dept_id", col "d" "id"),
                   Sql.Cmp (Sql.Eq, col "d" "name", str_ "eng") ))
        in
        let result, profiles, _stats = Engine.run_profiled db (Sql.Select sel) in
        Alcotest.(check int) "3 result rows" 3 (List.length result.Engine.rows);
        Alcotest.(check int) "2 steps" 2 (List.length profiles);
        (* the depts step scans 3 rows and keeps 1; the people probe via
           the dept_id index examines exactly the eng members *)
        let d = List.find (fun p -> p.Engine.alias = "d") profiles in
        Alcotest.(check int) "depts examined" 3 d.Engine.examined;
        Alcotest.(check int) "depts passed" 1 d.Engine.passed;
        let p = List.find (fun p -> p.Engine.alias = "p") profiles in
        Alcotest.(check int) "people examined" 3 p.Engine.examined;
        Alcotest.(check int) "people passed" 3 p.Engine.passed;
        (* profiled and plain execution agree *)
        Alcotest.(check bool) "same rows" true
          (result.Engine.rows = (Engine.run db (Sql.Select sel)).Engine.rows) );
    ( "explain mentions index usage",
      fun () ->
        let db = people_db () in
        let sel =
          select
            [ col "p" "name", "name" ]
            [ "people", "p" ]
            ~where:(Sql.Cmp (Sql.Eq, col "p" "id", int_ 3))
        in
        let plan = Engine.explain db (Sql.Select sel) in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "uses index" true (contains plan "index eq") );
  ]

(* ------------------------------------------------------------------ *)
(* Persistence codec                                                   *)
(* ------------------------------------------------------------------ *)

module Codec = Ppfx_minidb.Codec

let codec_tests =
  [
    ( "save/load round-trips a populated database",
      fun () ->
        let db = people_db () in
        let path = Filename.temp_file "ppfx" ".db" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Codec.save path db;
            let db2 = Codec.load path in
            Alcotest.(check int) "tables" 2 (List.length (Database.tables db2));
            let sel =
              select
                [ col "p" "name", "person"; col "d" "name", "dept" ]
                [ "people", "p"; "depts", "d" ]
                ~where:(Sql.Cmp (Sql.Eq, col "p" "dept_id", col "d" "id"))
                ~order:[ col "p" "id" ]
            in
            Alcotest.(check bool) "same query results" true (run db sel = run db2 sel);
            (* Indexes were rebuilt. *)
            let people = Database.table db2 "people" in
            Alcotest.(check bool) "id index" true (Table.index_on people [ "id" ] <> None)) );
    ( "tombstones are compacted on save",
      fun () ->
        let db = people_db () in
        ignore (Table.delete (Database.table db "people") 0);
        let path = Filename.temp_file "ppfx" ".db" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Codec.save path db;
            let db2 = Codec.load path in
            let people = Database.table db2 "people" in
            Alcotest.(check int) "rows" 5 (Table.row_count people);
            Alcotest.(check int) "live" 5 (Table.live_count people)) );
    ( "all value shapes round-trip",
      fun () ->
        let db = Database.create () in
        let t =
          Database.create_table db ~name:"v"
            ~columns:
              [
                { Table.name = "i"; ty = Value.Tint };
                { Table.name = "f"; ty = Value.Tfloat };
                { Table.name = "s"; ty = Value.Tstr };
                { Table.name = "b"; ty = Value.Tbin };
              ]
        in
        let rows =
          [
            [| Value.Int min_int; Value.Float 3.14159; Value.Str "uniÃ©'quote"; Value.Bin " ÿ" |];
            [| Value.Int max_int; Value.Float (-0.0); Value.Str ""; Value.Bin "" |];
            [| Value.Null; Value.Null; Value.Null; Value.Null |];
            [| Value.Int 0; Value.Float infinity; Value.Str "
	"; Value.Bin "ÿÿÿ" |];
          ]
        in
        List.iter (fun r -> ignore (Table.insert t r)) rows;
        let path = Filename.temp_file "ppfx" ".db" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Codec.save path db;
            let db2 = Codec.load path in
            let t2 = Database.table db2 "v" in
            let got = ref [] in
            Table.iter_rows (fun _ r -> got := r :: !got) t2;
            Alcotest.(check bool) "rows equal" true (List.rev !got = rows)) );
    ( "corrupt input rejected",
      fun () ->
        let path = Filename.temp_file "ppfx" ".db" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            output_string oc "NOTADB";
            close_out oc;
            (match Codec.load path with
             | _ -> Alcotest.fail "expected Corrupt"
             | exception Codec.Corrupt _ -> ());
            let oc = open_out_bin path in
            output_string oc "PPFXDB1";
            close_out oc;
            (match Codec.load path with
             | _ -> Alcotest.fail "expected Corrupt (truncated)"
             | exception Codec.Corrupt _ -> ())) );
  ]

(* Varint edge values round-trip. *)
let prop_codec_roundtrip =
  QCheck.Test.make ~count:300 ~name:"random databases survive save/load"
    (QCheck.make
       ~print:(fun rows -> Printf.sprintf "%d rows" (List.length rows))
       QCheck.Gen.(
         list_size (int_bound 50)
           (pair (int_range (-1000000) 1000000) (string_size ~gen:printable (int_bound 20)))))
    (fun rows ->
      let db = Database.create () in
      let t =
        Database.create_table db ~name:"r"
          ~columns:
            [ { Table.name = "i"; ty = Value.Tint }; { Table.name = "s"; ty = Value.Tstr } ]
      in
      List.iter (fun (i, s) -> ignore (Table.insert t [| Value.Int i; Value.Str s |])) rows;
      Table.create_index t [ "i" ];
      let path = Filename.temp_file "ppfx" ".db" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Codec.save path db;
          let db2 = Codec.load path in
          let t2 = Database.table db2 "r" in
          let got = ref [] in
          Table.iter_rows (fun _ r -> got := (r.(0), r.(1)) :: !got) t2;
          List.rev !got = List.map (fun (i, s) -> Value.Int i, Value.Str s) rows))

(* ------------------------------------------------------------------ *)
(* Planner vs naive oracle on random queries                           *)
(* ------------------------------------------------------------------ *)

(* Random schema: two tables with int columns; random conjunctive WHERE
   over equalities/comparisons/between, possibly with a correlated EXISTS. *)
let gen_query_case =
  let open QCheck.Gen in
  let rows_gen = list_size (int_range 0 40) (pair (int_range 0 8) (int_range 0 8)) in
  let cmp_gen = oneofl [ Sql.Eq; Sql.Ne; Sql.Lt; Sql.Le; Sql.Gt; Sql.Ge ] in
  let colname = oneofl [ "a"; "b" ] in
  let atom alias =
    oneof
      [
        map2 (fun op c -> Sql.Cmp (op, Sql.Col (alias, c), Sql.Const (Value.Int 4))) cmp_gen colname;
        map2
          (fun c1 c2 -> Sql.Cmp (Sql.Eq, Sql.Col ("t", c1), Sql.Col ("u", c2)))
          colname colname;
        map (fun c -> Sql.Between (Sql.Col (alias, c), Sql.Const (Value.Int 2), Sql.Const (Value.Int 6))) colname;
      ]
  in
  let base_pred = oneof [ atom "t"; atom "u" ] in
  let pred =
    oneof
      [
        base_pred;
        map2 (fun a b -> Sql.And (a, b)) base_pred base_pred;
        map2 (fun a b -> Sql.Or (a, b)) base_pred base_pred;
        map (fun a -> Sql.Not a) base_pred;
        (* correlated exists against table v *)
        map
          (fun c ->
            Sql.Exists
              {
                Sql.distinct = false;
                projections = [ Sql.Const Value.Null, "null" ];
                from = [ "v", "v" ];
                where = Some (Sql.Cmp (Sql.Eq, Sql.Col ("v", "a"), Sql.Col ("t", c)));
                order_by = [];
              })
          colname;
      ]
  in
  triple rows_gen rows_gen (pair rows_gen (opt pred))

let build_case (rows_t, rows_u, (rows_v, where)) =
  let db = Database.create () in
  let mk name rows =
    let t =
      Database.create_table db ~name
        ~columns:
          [ { Table.name = "a"; ty = Value.Tint }; { Table.name = "b"; ty = Value.Tint } ]
    in
    List.iter (fun (a, b) -> ignore (Table.insert t [| Value.Int a; Value.Int b |])) rows;
    Table.create_index t [ "a" ];
    Table.create_index t [ "a"; "b" ];
    t
  in
  ignore (mk "t" rows_t);
  ignore (mk "u" rows_u);
  ignore (mk "v" rows_v);
  let sel =
    {
      Sql.distinct = true;
      projections =
        [
          Sql.Col ("t", "a"), "ta"; Sql.Col ("t", "b"), "tb"; Sql.Col ("u", "a"), "ua";
        ];
      from = [ "t", "t"; "u", "u" ];
      where;
      order_by = [ Sql.Col ("t", "a"); Sql.Col ("t", "b"); Sql.Col ("u", "a"); Sql.Col ("u", "b") ];
    }
  in
  db, Sql.Select sel

let prop_planner_vs_naive =
  QCheck.Test.make ~count:400 ~name:"planner agrees with naive cross-product oracle"
    (QCheck.make
       ~print:(fun case ->
         let _, stmt = build_case case in
         Sql.to_string stmt)
       gen_query_case)
    (fun case ->
      let db, stmt = build_case case in
      let fast = (Engine.run db stmt).Engine.rows in
      let slow = (Engine.run_naive db stmt).Engine.rows in
      fast = slow)

(* ------------------------------------------------------------------ *)
(* Optimizer pass: differential properties and EXPLAIN surface         *)
(* ------------------------------------------------------------------ *)

let opts_off =
  {
    Engine.semijoin_reduction = false;
    hash_join = false;
    force_hash_join = false;
    merge_join = false;
    force_merge_join = false;
    content_probe = false;
  }

let opts_forced =
  {
    Engine.semijoin_reduction = true;
    hash_join = true;
    force_hash_join = true;
    merge_join = true;
    force_merge_join = false;
    content_probe = true;
  }

let opts_forced_merge = { Engine.default_opts with Engine.force_merge_join = true }

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Random queries over an XMark-shaped vocabulary: a small Paths
   dimension (pathid, path) joined to a fact table on path_id and
   filtered by a path regex — exactly the shape the semi-join reduction
   targets. Sometimes the paths alias is also projected (the reduction
   must then decline), fact path_ids sometimes dangle, and the optional
   residual comparison keeps mixed filter lists in play. Every opts
   configuration, including forced hash joins, must match the naive
   cross-product oracle byte for byte. *)
let gen_path_case =
  let open QCheck.Gen in
  let seg =
    oneofl
      [ "site"; "regions"; "item"; "description"; "parlist"; "listitem"; "text";
        "keyword"; "name"; "emph" ]
  in
  let path = map (fun segs -> "/" ^ String.concat "/" segs) (list_size (int_range 1 4) seg) in
  let pattern =
    oneof
      [
        map (fun s -> "^/(.+/)?" ^ s ^ "$") seg;
        map (fun s -> "^/" ^ s ^ "(/.+)?$") seg;
        map2 (fun a b -> "^/" ^ a ^ "/(.+/)?" ^ b ^ "$") seg seg;
      ]
  in
  let paths_gen = list_size (int_bound 20) path in
  let fact_gen = list_size (int_bound 30) (pair (int_range (-2) 25) (int_bound 9)) in
  quad paths_gen fact_gen pattern (pair bool (int_bound 9))

let build_path_case (paths, facts, pattern, (project_path, cutoff)) =
  let db = Database.create () in
  let pt =
    Database.create_table db ~name:"paths"
      ~columns:
        [ { Table.name = "pathid"; ty = Value.Tint };
          { Table.name = "path"; ty = Value.Tstr } ]
  in
  List.iteri (fun i p -> ignore (Table.insert pt [| Value.Int i; Value.Str p |])) paths;
  Table.create_index pt [ "pathid" ];
  let ft =
    Database.create_table db ~name:"fact"
      ~columns:
        [ { Table.name = "id"; ty = Value.Tint };
          { Table.name = "path_id"; ty = Value.Tint };
          { Table.name = "val"; ty = Value.Tint } ]
  in
  List.iteri
    (fun i (pid, v) -> ignore (Table.insert ft [| Value.Int i; Value.Int pid; Value.Int v |]))
    facts;
  let sel =
    {
      Sql.distinct = false;
      projections =
        ((Sql.Col ("f", "id"), "id") :: (Sql.Col ("f", "val"), "val")
        :: (if project_path then [ Sql.Col ("p", "path"), "path" ] else []));
      from = [ "paths", "p"; "fact", "f" ];
      where =
        Some
          (Sql.And
             ( Sql.Regexp_like (Sql.Col ("p", "path"), pattern),
               Sql.And
                 ( Sql.Cmp (Sql.Eq, Sql.Col ("p", "pathid"), Sql.Col ("f", "path_id")),
                   Sql.Cmp (Sql.Ge, Sql.Col ("f", "val"), Sql.Const (Value.Int cutoff)) )
             ));
      order_by = [ Sql.Col ("f", "id") ];
    }
  in
  db, Sql.Select sel

let prop_optimizer_vs_naive =
  QCheck.Test.make ~count:300
    ~name:"optimizer pass agrees with the naive oracle on path-filter queries"
    (QCheck.make
       ~print:(fun case ->
         let _, stmt = build_path_case case in
         Sql.to_string stmt)
       gen_path_case)
    (fun case ->
      let db, stmt = build_path_case case in
      let gold = (Engine.run_naive db stmt).Engine.rows in
      List.for_all
        (fun opts -> (Engine.run ~opts db stmt).Engine.rows = gold)
        [ opts_off; Engine.default_opts; opts_forced ])

(* Deterministic store for the EXPLAIN surface tests. *)
let optimizer_fixture () =
  let db = Database.create () in
  let pt =
    Database.create_table db ~name:"paths"
      ~columns:
        [ { Table.name = "pathid"; ty = Value.Tint };
          { Table.name = "path"; ty = Value.Tstr } ]
  in
  List.iteri
    (fun i p -> ignore (Table.insert pt [| Value.Int i; Value.Str p |]))
    [ "/site"; "/site/regions"; "/site/regions/item"; "/site/regions/item/keyword";
      "/site/people/person/name" ];
  let ft =
    Database.create_table db ~name:"fact"
      ~columns:
        [ { Table.name = "id"; ty = Value.Tint };
          { Table.name = "path_id"; ty = Value.Tint };
          { Table.name = "val"; ty = Value.Tint } ]
  in
  List.iteri
    (fun i (pid, v) -> ignore (Table.insert ft [| Value.Int i; Value.Int pid; Value.Int v |]))
    [ 3, 1; 3, 2; 4, 5; 2, 0; 0, 7 ];
  db, pt, ft

let reduce_stmt =
  Sql.Select
    {
      Sql.distinct = false;
      projections = [ Sql.Col ("f", "id"), "id" ];
      from = [ "paths", "p"; "fact", "f" ];
      where =
        Some
          (Sql.And
             ( Sql.Regexp_like (Sql.Col ("p", "path"), "^/(.+/)?keyword$"),
               Sql.Cmp (Sql.Eq, Sql.Col ("p", "pathid"), Sql.Col ("f", "path_id")) ));
      order_by = [ Sql.Col ("f", "id") ];
    }

let hash_stmt =
  Sql.Select
    {
      Sql.distinct = false;
      projections = [ Sql.Col ("f", "id"), "fid"; Sql.Col ("g", "id"), "gid" ];
      from = [ "fact", "f"; "fact", "g" ];
      where = Some (Sql.Cmp (Sql.Eq, Sql.Col ("f", "path_id"), Sql.Col ("g", "path_id")));
      order_by = [ Sql.Col ("f", "id"); Sql.Col ("g", "id") ];
    }

let optimizer_tests =
  [
    ( "explain surfaces the semi-join reduction",
      fun () ->
        let db, _, _ = optimizer_fixture () in
        let on = Engine.explain db reduce_stmt in
        Alcotest.(check bool) "reduction line" true (contains on "semi-join reduction");
        Alcotest.(check bool) "probe step" true (contains on "pathid set probe");
        let off = Engine.explain ~opts:opts_off db reduce_stmt in
        Alcotest.(check bool) "off: no reduction" false
          (contains off "semi-join reduction");
        Alcotest.(check bool) "off: no probe" false (contains off "pathid set probe") );
    ( "explain surfaces the hash join",
      fun () ->
        let db, _, _ = optimizer_fixture () in
        let on = Engine.explain ~opts:opts_forced db hash_stmt in
        Alcotest.(check bool) "hash join step" true (contains on "hash join");
        let off = Engine.explain ~opts:opts_off db hash_stmt in
        Alcotest.(check bool) "off: no hash join" false (contains off "hash join") );
    ( "reduction and hash join preserve results on the fixture",
      fun () ->
        let db, _, _ = optimizer_fixture () in
        List.iter
          (fun stmt ->
            let gold = (Engine.run ~opts:opts_off db stmt).Engine.rows in
            Alcotest.(check int) "default opts" 0
              (compare (Engine.run db stmt).Engine.rows gold);
            Alcotest.(check int) "forced opts" 0
              (compare (Engine.run ~opts:opts_forced db stmt).Engine.rows gold))
          [ reduce_stmt; hash_stmt ] );
    ( "reduction probe counts rows and regex evals",
      fun () ->
        let db, _, _ = optimizer_fixture () in
        let plan = Engine.prepare db reduce_stmt in
        let at_prepare = Engine.plan_stats plan in
        Alcotest.(check int) "one reduction" 1 at_prepare.Engine.reductions;
        Alcotest.(check int) "regex once per paths row" 5 at_prepare.Engine.regex_plan_evals;
        ignore (Engine.run_plan plan);
        let per =
          Engine.stats_diff (Engine.plan_stats plan) at_prepare
        in
        Alcotest.(check int) "no regex at execution" 0 (per.Engine.regex_plan_evals + per.Engine.regex_exec_evals);
        Alcotest.(check bool) "rows probed" true (per.Engine.rows_probed > 0) );
    ( "prepared reduction is invalidated by writes",
      fun () ->
        let db, pt, ft = optimizer_fixture () in
        let plan = Engine.prepare db reduce_stmt in
        Alcotest.(check bool) "fresh plan valid" true (Engine.plan_valid plan);
        ignore (Table.insert pt [| Value.Int 5; Value.Str "/site/keyword" |]);
        ignore (Table.insert ft [| Value.Int 5; Value.Int 5; Value.Int 9 |]);
        Alcotest.(check bool) "stale after writes" false (Engine.plan_valid plan);
        let fresh = Engine.prepare db reduce_stmt in
        let gold = (Engine.run ~opts:opts_off db reduce_stmt).Engine.rows in
        Alcotest.(check int) "re-prepared plan sees the new rows" 0
          (compare (Engine.run_plan fresh).Engine.rows gold) );
  ]

(* ------------------------------------------------------------------ *)
(* Path-partitioned storage: pruning, differentials, and mutations     *)
(* ------------------------------------------------------------------ *)

(* Same vocabulary as [build_path_case], but built through a layout
   knob: the fact table is optionally partitioned by [path_id] with
   segments sorted on [id] -- the shredder's layout, with the unique
   [id] column standing in for [dewey_pos]. The partitioned store must
   agree with the heap store and the naive oracle under every opts
   configuration, and [Table.check_partitions] must hold before and
   after arbitrary insert/delete/update sequences. *)
let build_path_store ~partitioned (paths, facts, _, _) =
  let db = Database.create () in
  let pt =
    Database.create_table db ~name:"paths"
      ~columns:
        [ { Table.name = "pathid"; ty = Value.Tint };
          { Table.name = "path"; ty = Value.Tstr } ]
  in
  List.iteri (fun i p -> ignore (Table.insert pt [| Value.Int i; Value.Str p |])) paths;
  Table.create_index pt [ "pathid" ];
  let partition =
    if partitioned then Some { Table.part_col = "path_id"; part_sort = "id" } else None
  in
  let ft =
    Database.create_table ?partition db ~name:"fact"
      ~columns:
        [ { Table.name = "id"; ty = Value.Tint };
          { Table.name = "path_id"; ty = Value.Tint };
          { Table.name = "val"; ty = Value.Tint } ]
  in
  List.iteri
    (fun i (pid, v) -> ignore (Table.insert ft [| Value.Int i; Value.Int pid; Value.Int v |]))
    facts;
  db, ft

let prop_partitioned_vs_heap =
  QCheck.Test.make ~count:300
    ~name:"partitioned layout agrees with the heap layout and the naive oracle"
    (QCheck.make
       ~print:(fun case ->
         let _, stmt = build_path_case case in
         Sql.to_string stmt)
       gen_path_case)
    (fun case ->
      let heap_db, stmt = build_path_case case in
      let part_db, part_ft = build_path_store ~partitioned:true case in
      (match Table.check_partitions part_ft with
       | Ok () -> ()
       | Error e -> QCheck.Test.fail_reportf "partition invariant: %s" e);
      let gold = (Engine.run_naive heap_db stmt).Engine.rows in
      List.for_all
        (fun opts ->
          (Engine.run ~opts part_db stmt).Engine.rows = gold
          && (Engine.run ~opts heap_db stmt).Engine.rows = gold)
        [ opts_off; Engine.default_opts; opts_forced ])

(* Mutations are replayed identically against both layouts: row ids
   stay in lockstep because both tables see the same insert order, and
   the [id] column value is preserved across updates so the ORDER BY
   stays a total order. *)
let apply_path_mutations ft muts =
  let live = ref [] in
  for i = Table.live_count ft - 1 downto 0 do
    live := (i, i) :: !live
  done;
  let fresh = ref 1000 in
  List.iter
    (fun (op, sel, pid, v) ->
      match op, !live with
      | 0, _ | _, [] ->
        incr fresh;
        let rid = Table.insert ft [| Value.Int !fresh; Value.Int pid; Value.Int v |] in
        live := (rid, !fresh) :: !live
      | 1, l ->
        let rid, _ = List.nth l (sel mod List.length l) in
        ignore (Table.delete ft rid);
        live := List.remove_assoc rid !live
      | _, l ->
        let rid, idv = List.nth l (sel mod List.length l) in
        ignore (Table.update ft rid [| Value.Int idv; Value.Int pid; Value.Int v |]))
    muts

let gen_path_mutations =
  QCheck.Gen.(
    list_size (int_bound 25)
      (quad (int_bound 2) (int_bound 99) (int_range (-2) 25) (int_bound 9)))

let prop_partitioned_mutations =
  QCheck.Test.make ~count:200
    ~name:"partitions stay sorted and differential after random mutations"
    (QCheck.make
       ~print:(fun (case, muts) ->
         let _, stmt = build_path_case case in
         Printf.sprintf "%s with %d mutations" (Sql.to_string stmt) (List.length muts))
       (QCheck.Gen.pair gen_path_case gen_path_mutations))
    (fun (case, muts) ->
      let _, stmt = build_path_case case in
      let heap_db, heap_ft = build_path_store ~partitioned:false case in
      let part_db, part_ft = build_path_store ~partitioned:true case in
      apply_path_mutations heap_ft muts;
      apply_path_mutations part_ft muts;
      (match Table.check_partitions part_ft with
       | Ok () -> ()
       | Error e -> QCheck.Test.fail_reportf "partition invariant after mutations: %s" e);
      let gold = (Engine.run_naive heap_db stmt).Engine.rows in
      (Engine.run part_db stmt).Engine.rows = gold
      && (Engine.run heap_db stmt).Engine.rows = gold)

(* [optimizer_fixture] with the fact table partitioned: pathids
   {0, 2, 3, 4} give four partitions, and [reduce_stmt]'s regex matches
   only pathid 3 (two rows), so a pruned scan touches 1 of 4 segments. *)
let partitioned_fixture () =
  let db = Database.create () in
  let pt =
    Database.create_table db ~name:"paths"
      ~columns:
        [ { Table.name = "pathid"; ty = Value.Tint };
          { Table.name = "path"; ty = Value.Tstr } ]
  in
  List.iteri
    (fun i p -> ignore (Table.insert pt [| Value.Int i; Value.Str p |]))
    [ "/site"; "/site/regions"; "/site/regions/item"; "/site/regions/item/keyword";
      "/site/people/person/name" ];
  let ft =
    Database.create_table db
      ~partition:{ Table.part_col = "path_id"; part_sort = "id" }
      ~name:"fact"
      ~columns:
        [ { Table.name = "id"; ty = Value.Tint };
          { Table.name = "path_id"; ty = Value.Tint };
          { Table.name = "val"; ty = Value.Tint } ]
  in
  List.iteri
    (fun i (pid, v) -> ignore (Table.insert ft [| Value.Int i; Value.Int pid; Value.Int v |]))
    [ 3, 1; 3, 2; 4, 5; 2, 0; 0, 7 ];
  db, pt, ft

let partition_tests =
  [
    ( "partitioned table: spec, keys, segment sizes and invariant",
      fun () ->
        let _, _, ft = partitioned_fixture () in
        (match Table.partition_spec ft with
         | Some s ->
           Alcotest.(check string) "part col" "path_id" s.Table.part_col;
           Alcotest.(check string) "sort col" "id" s.Table.part_sort
         | None -> Alcotest.fail "expected a partition spec");
        Alcotest.(check (list int)) "keys" [ 0; 2; 3; 4 ] (Table.partition_keys ft);
        Alcotest.(check int) "partition count" 4 (Table.partition_count ft);
        Alcotest.(check int) "rows in partition 3" 2 (Table.partition_size ft 3);
        (match Table.check_partitions ft with
         | Ok () -> ()
         | Error e -> Alcotest.fail e) );
    ( "explain surfaces partition pruning",
      fun () ->
        let db, _, _ = partitioned_fixture () in
        let on = Engine.explain db reduce_stmt in
        Alcotest.(check bool) "partition scan" true (contains on "partition scan");
        Alcotest.(check bool) "pruning line" true
          (contains on "partitions: scanned 1/4");
        Alcotest.(check bool) "sort elided over one id-sorted segment" true
          (contains on "sort elided");
        let off = Engine.explain ~opts:opts_off db reduce_stmt in
        Alcotest.(check bool) "off: no partition scan" false
          (contains off "partition scan") );
    ( "partition scan prunes and collapses rows scanned",
      fun () ->
        let db, _, _ = partitioned_fixture () in
        let plan = Engine.prepare db reduce_stmt in
        let before = Engine.plan_stats plan in
        let r = Engine.run_plan plan in
        let per = Engine.stats_diff (Engine.plan_stats plan) before in
        Alcotest.(check int) "result rows" 2 (List.length r.Engine.rows);
        Alcotest.(check int) "scanned = matched partition rows" 2
          per.Engine.rows_scanned;
        Alcotest.(check int) "partitions scanned" 1 per.Engine.partitions_scanned;
        Alcotest.(check int) "partitions pruned" 3 per.Engine.partitions_pruned;
        Alcotest.(check int) "pathid probe subsumed by pruning" 0
          per.Engine.rows_probed );
    ( "mutations keep segments sorted and results correct",
      fun () ->
        let db, _, ft = partitioned_fixture () in
        ignore (Table.insert ft [| Value.Int 9; Value.Int 3; Value.Int 4 |]);
        ignore (Table.delete ft 0);
        ignore (Table.update ft 1 [| Value.Int 1; Value.Int 4; Value.Int 2 |]);
        (match Table.check_partitions ft with
         | Ok () -> ()
         | Error e -> Alcotest.fail e);
        let gold = (Engine.run_naive db reduce_stmt).Engine.rows in
        Alcotest.(check int) "agrees with oracle after mutations" 0
          (compare (Engine.run db reduce_stmt).Engine.rows gold) );
  ]

(* ------------------------------------------------------------------ *)
(* Dewey merge join: differential property and EXPLAIN surface         *)
(* ------------------------------------------------------------------ *)

(* Random order-axis queries over two tables with unique Tbin dewey
   keys — the shapes the translator emits for following/preceding and
   containment windows ([d > a || 0xFF], [d < a], [BETWEEN a AND
   a || 0xFF], both orientations). Every opts configuration, including
   forced merge joins (ordered outer or not), must match the naive
   cross-product oracle byte for byte. Dewey keys are deduplicated per
   table, mirroring real stores where dewey_pos is unique, and the
   ORDER BY covers every projection so the expected row list is total. *)
let gen_order_case =
  let open QCheck.Gen in
  let byte = map Char.chr (int_range 1 4) in
  let dewey = string_size ~gen:byte (int_range 1 4) in
  let rows = list_size (int_bound 15) (pair dewey (int_bound 9)) in
  triple rows rows (pair (int_bound 3) (int_bound 9))

let build_order_case (rows_x, rows_y, (shape, cutoff)) =
  let db = Database.create () in
  let mk name rows =
    let t =
      Database.create_table db ~name
        ~columns:
          [ { Table.name = "dewey"; ty = Value.Tbin };
            { Table.name = "val"; ty = Value.Tint } ]
    in
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (d, v) ->
        if not (Hashtbl.mem seen d) then begin
          Hashtbl.add seen d ();
          ignore (Table.insert t [| Value.Bin d; Value.Int v |])
        end)
      rows;
    Table.create_index t [ "dewey" ];
    t
  in
  ignore (mk "x" rows_x);
  ignore (mk "y" rows_y);
  let dx = Sql.Col ("x", "dewey") and dy = Sql.Col ("y", "dewey") in
  let sentinel = Sql.Concat (dx, Sql.Const (Value.Bin "\xff")) in
  let order_pred =
    match shape with
    | 0 -> Sql.Cmp (Sql.Gt, dy, sentinel) (* following *)
    | 1 -> Sql.Cmp (Sql.Lt, sentinel, dy) (* mirrored following *)
    | 2 -> Sql.Cmp (Sql.Lt, dy, dx) (* preceding *)
    | _ -> Sql.Between (dy, dx, sentinel) (* containment window *)
  in
  let where =
    Sql.And
      (order_pred, Sql.Cmp (Sql.Ge, Sql.Col ("y", "val"), Sql.Const (Value.Int cutoff)))
  in
  let sel =
    {
      Sql.distinct = true;
      projections =
        [ dx, "xd"; Sql.Col ("x", "val"), "xv"; dy, "yd"; Sql.Col ("y", "val"), "yv" ];
      from = [ "x", "x"; "y", "y" ];
      where = Some where;
      order_by = [ dx; Sql.Col ("x", "val"); dy; Sql.Col ("y", "val") ];
    }
  in
  db, Sql.Select sel

let prop_merge_join_vs_naive =
  QCheck.Test.make ~count:400
    ~name:"dewey merge join agrees with the naive oracle on order-axis queries"
    (QCheck.make
       ~print:(fun case ->
         let _, stmt = build_order_case case in
         Sql.to_string stmt)
       gen_order_case)
    (fun case ->
      let db, stmt = build_order_case case in
      let gold = (Engine.run_naive db stmt).Engine.rows in
      List.for_all
        (fun opts -> (Engine.run ~opts db stmt).Engine.rows = gold)
        [ opts_off; Engine.default_opts; opts_forced_merge ])

(* Deterministic store for the merge-join EXPLAIN surface tests. *)
let order_fixture () =
  let db = Database.create () in
  let mk name rows =
    let t =
      Database.create_table db ~name
        ~columns:
          [ { Table.name = "dewey"; ty = Value.Tbin };
            { Table.name = "val"; ty = Value.Tint } ]
    in
    List.iteri (fun i d -> ignore (Table.insert t [| Value.Bin d; Value.Int i |])) rows;
    Table.create_index t [ "dewey" ];
    t
  in
  ignore (mk "x" [ "\x01"; "\x01\x01"; "\x02"; "\x02\x01"; "\x03" ]);
  ignore (mk "y" [ "\x01"; "\x01\x02"; "\x02"; "\x02\x02"; "\x04" ]);
  db

let order_stmt shape =
  let dx = Sql.Col ("x", "dewey") and dy = Sql.Col ("y", "dewey") in
  let sentinel = Sql.Concat (dx, Sql.Const (Value.Bin "\xff")) in
  let pred =
    match shape with
    | `Following -> Sql.Cmp (Sql.Gt, dy, sentinel)
    | `Preceding -> Sql.Cmp (Sql.Lt, dy, dx)
    | `Containment -> Sql.Between (dy, dx, sentinel)
  in
  Sql.Select
    {
      Sql.distinct = true;
      projections = [ dx, "xd"; dy, "yd" ];
      from = [ "x", "x"; "y", "y" ];
      where = Some pred;
      order_by = [ dx; dy ];
    }

let merge_join_tests =
  [
    ( "explain surfaces the dewey merge join",
      fun () ->
        let db = order_fixture () in
        let on = Engine.explain db (order_stmt `Following) in
        Alcotest.(check bool) "merge join step" true (contains on "merge join (dewey)");
        let off = Engine.explain ~opts:opts_off db (order_stmt `Following) in
        Alcotest.(check bool) "off: no merge join" false (contains off "merge join") );
    ( "explain notes preserved order",
      fun () ->
        let db = order_fixture () in
        let by col =
          Sql.Select
            {
              Sql.distinct = false;
              projections = [ Sql.Col ("x", "dewey"), "d"; Sql.Col ("x", "val"), "v" ];
              from = [ "x", "x" ];
              where = None;
              order_by = [ Sql.Col ("x", col) ];
            }
        in
        let dewey_plan = Engine.explain db (by "dewey") in
        Alcotest.(check bool) "dewey order preserved" true
          (contains dewey_plan "order: preserved");
        let val_plan = Engine.explain db (by "val") in
        Alcotest.(check bool) "unindexed order still sorts" false
          (contains val_plan "order: preserved") );
    ( "merge join preserves results on the fixture",
      fun () ->
        let db = order_fixture () in
        List.iter
          (fun shape ->
            let stmt = order_stmt shape in
            let gold = (Engine.run ~opts:opts_off db stmt).Engine.rows in
            Alcotest.(check int) "default opts" 0
              (compare (Engine.run db stmt).Engine.rows gold);
            Alcotest.(check int) "forced merge" 0
              (compare (Engine.run ~opts:opts_forced_merge db stmt).Engine.rows gold))
          [ `Following; `Preceding; `Containment ] );
    ( "forced merge join counts probes, steps and bytes",
      fun () ->
        let db = order_fixture () in
        let plan = Engine.prepare ~opts:opts_forced_merge db (order_stmt `Following) in
        let at_prepare = Engine.plan_stats plan in
        ignore (Engine.run_plan plan);
        let per = Engine.stats_diff (Engine.plan_stats plan) at_prepare in
        Alcotest.(check bool) "merge probes" true (per.Engine.merge_probes > 0);
        Alcotest.(check bool) "merge steps" true (per.Engine.merge_steps > 0);
        Alcotest.(check bool) "peak bytes accounted" true
          ((Engine.plan_stats plan).Engine.peak_bytes > 0) );
  ]

(* ------------------------------------------------------------------ *)
(* Content indexes: units, probe EXPLAIN surface, and differentials    *)
(* ------------------------------------------------------------------ *)

let content_db kinds =
  let db = Database.create () in
  let t =
    Database.create_table db ~name:"docs"
      ~columns:
        [ { Table.name = "id"; ty = Value.Tint };
          { Table.name = "txt"; ty = Value.Tstr } ]
  in
  List.iteri
    (fun i v -> ignore (Table.insert t [| Value.Int i; v |]))
    [
      Value.Str "the quick brown fox";
      Value.Str "lazy dog sleeps";
      Value.Str "quicksilver linings";
      Value.Str "brown bread and honey";
      Value.Null;
      Value.Str "";
    ];
  List.iter (fun kind -> Table.add_content_index t ~col:"txt" ~kind) kinds;
  db, t

let content_ids t groups =
  match Table.content_candidates t ~col:"txt" groups with
  | None -> None
  | Some ids -> Some (Array.to_list ids)

let regex_sel pat =
  select
    [ col "d" "id", "id" ]
    [ "docs", "d" ]
    ~where:(Sql.Regexp_like (col "d" "txt", pat))
    ~order:[ col "d" "id" ]

let content_tests =
  [
    ( "token candidates, maintained across writes",
      fun () ->
        let _, t = content_db [ Table.Token ] in
        Alcotest.(check (option (list int))) "quick as substring of tokens"
          (Some [ 0; 2 ])
          (content_ids t [ [ "quick" ] ]);
        Alcotest.(check (option (list int))) "union within a group"
          (Some [ 0; 1; 2 ])
          (content_ids t [ [ "quick"; "dog" ] ]);
        Alcotest.(check (option (list int))) "intersection across groups"
          (Some [ 0 ])
          (content_ids t [ [ "quick" ]; [ "brown" ] ]);
        ignore (Table.delete t 0);
        ignore (Table.insert t [| Value.Int 6; Value.Str "quick again" |]);
        Alcotest.(check bool) "update rewrites postings" true
          (Table.update t 2 [| Value.Int 2; Value.Str "slow silver" |]);
        (match Table.check_content_indexes t with
         | Ok () -> ()
         | Error e -> Alcotest.failf "postings inconsistent: %s" e);
        Alcotest.(check (option (list int))) "candidates track the writes"
          (Some [ 6 ])
          (content_ids t [ [ "quick" ] ]) );
    ( "trigram candidates",
      fun () ->
        let _, t = content_db [ Table.Trigram ] in
        (* Trigrams cross token boundaries: "wn b" spans "brown bread". *)
        Alcotest.(check (option (list int))) "space-crossing trigram"
          (Some [ 3 ])
          (content_ids t [ [ "wn b" ] ]);
        Alcotest.(check (option (list int))) "long literal intersects its trigrams"
          (Some [ 2 ])
          (content_ids t [ [ "cksilver" ] ]);
        Alcotest.(check (option (list int))) "absent literal, empty candidates"
          (Some [])
          (content_ids t [ [ "zebra" ] ]) );
    ( "unanswerable probes fall back",
      fun () ->
        let _, t = content_db [ Table.Trigram ] in
        Alcotest.(check (option (list int))) "trigram cannot answer a 2-byte literal"
          None
          (content_ids t [ [ "qu" ] ]);
        Alcotest.(check bool) "unindexed column" true
          (Table.content_candidates t ~col:"id" [ [ "abc" ] ] = None);
        (* An unanswerable alternative poisons its group; a sound subset
           of groups still probes. *)
        Alcotest.(check (option (list int))) "poisoned group dropped, other kept"
          (Some [ 0; 2 ])
          (content_ids t [ [ "qu"; "quick" ]; [ "quick" ] ]) );
    ( "explain shows the probe, opts can disable it",
      fun () ->
        let db, _ = content_db [ Table.Token; Table.Trigram ] in
        let stmt = Sql.Select (regex_sel "quick") in
        let on = Engine.explain db stmt in
        Alcotest.(check bool) "probe line" true
          (contains on "content index probe");
        let off =
          Engine.explain ~opts:{ Engine.default_opts with content_probe = false }
            db stmt
        in
        Alcotest.(check bool) "no probe when disabled" false
          (contains off "content index probe");
        Alcotest.(check bool) "full scan instead" true (contains off "full scan") );
    ( "probe counters, and no exec-time NFA work",
      fun () ->
        let db, _ = content_db [ Table.Token; Table.Trigram ] in
        let stmt = Sql.Select (regex_sel "quick") in
        let plan = Engine.prepare db stmt in
        let before = Engine.plan_stats plan in
        let rows = (Engine.run_plan plan).Engine.rows in
        let d = Engine.stats_diff (Engine.plan_stats plan) before in
        Alcotest.(check int) "one probe" 1 d.Engine.content_probes;
        Alcotest.(check int) "candidates" 2 d.Engine.content_candidates;
        Alcotest.(check int) "all candidates verify" 2 d.Engine.content_verified;
        Alcotest.(check int) "scanned = candidate set" 2 d.Engine.rows_scanned;
        Alcotest.(check int) "frozen DFA verifies" 2 d.Engine.dfa_execs;
        Alcotest.(check int) "no NFA simulation" 0 d.Engine.regex_exec_evals;
        let scan =
          (Engine.run ~opts:{ Engine.default_opts with content_probe = false } db
             stmt)
            .Engine.rows
        in
        Alcotest.(check bool) "probe == scan" true (rows = scan) );
  ]

(* Differential: content-probed execution == forced scan == naive
   oracle, over random documents (with NULLs and empty strings) and
   random patterns — literal-bearing ones that drive the probe, plus
   anchored/alternation/wildcard shapes and short literals that force
   the scan fallback. *)
let gen_content_case =
  let open QCheck.Gen in
  let word = string_size ~gen:(map Char.chr (int_range 97 99)) (int_range 1 6) in
  let text = map (String.concat " ") (list_size (int_bound 4) word) in
  let lit = string_size ~gen:(map Char.chr (int_range 97 99)) (int_range 2 5) in
  let pattern =
    oneof
      [
        lit;
        map2 (fun a b -> a ^ "|" ^ b) lit lit;
        map (fun a -> ".*" ^ a) lit;
        map (fun a -> "^" ^ a) lit;
        map2 (fun a b -> a ^ ".*" ^ b) lit lit;
        map (fun a -> a ^ "$") lit;
        map2 (fun a b -> a ^ "( |x)" ^ b) lit lit;
      ]
  in
  pair (list_size (int_bound 25) (option text)) pattern

let prop_content_vs_scan_vs_naive =
  QCheck.Test.make ~count:300 ~name:"content probe == forced scan == naive"
    (QCheck.make gen_content_case ~print:(fun (rows, pat) ->
         Printf.sprintf "pattern %S over %s" pat
           (String.concat "; "
              (List.map (function None -> "NULL" | Some s -> Printf.sprintf "%S" s) rows))))
    (fun (rows, pat) ->
      let db = Database.create () in
      let t =
        Database.create_table db ~name:"docs"
          ~columns:
            [ { Table.name = "id"; ty = Value.Tint };
              { Table.name = "txt"; ty = Value.Tstr } ]
      in
      List.iteri
        (fun i r ->
          ignore
            (Table.insert t
               [| Value.Int i; (match r with Some s -> Value.Str s | None -> Value.Null) |]))
        rows;
      Table.add_content_index t ~col:"txt" ~kind:Table.Token;
      Table.add_content_index t ~col:"txt" ~kind:Table.Trigram;
      let stmt = Sql.Select (regex_sel pat) in
      let probed = (Engine.run db stmt).Engine.rows in
      let scanned =
        (Engine.run ~opts:{ Engine.default_opts with content_probe = false } db stmt)
          .Engine.rows
      in
      let naive = (Engine.run_naive db stmt).Engine.rows in
      probed = scanned && scanned = naive)

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "minidb"
    [
      "values", List.map tc value_tests;
      "btree", List.map tc btree_unit_tests;
      "btree-delete", List.map tc btree_delete_tests;
      "btree-properties",
        List.map QCheck_alcotest.to_alcotest [ prop_btree_oracle; prop_btree_ops ];
      "tables", List.map tc table_tests;
      "sql", List.map tc sql_tests;
      "codec", List.map tc codec_tests;
      "codec-properties", [ QCheck_alcotest.to_alcotest prop_codec_roundtrip ];
      "planner-properties", [ QCheck_alcotest.to_alcotest prop_planner_vs_naive ];
      "optimizer", List.map tc optimizer_tests;
      "optimizer-properties", [ QCheck_alcotest.to_alcotest prop_optimizer_vs_naive ];
      "partitioning", List.map tc partition_tests;
      "partitioning-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_partitioned_vs_heap; prop_partitioned_mutations ];
      "merge-join", List.map tc merge_join_tests;
      "merge-join-properties", [ QCheck_alcotest.to_alcotest prop_merge_join_vs_naive ];
      "content-index", List.map tc content_tests;
      "content-index-properties",
        [ QCheck_alcotest.to_alcotest prop_content_vs_scan_vs_naive ];
    ]

(* Save/load round-trips for the binary database codec: table contents
   and indexes survive persistence (indexes are rebuilt, not stored), a
   reloaded store answers translated queries identically, and compaction
   of tombstoned rows keeps query results while renumbering row ids. *)

module Doc = Ppfx_xml.Doc
module Loader = Ppfx_shred.Loader
module Translate = Ppfx_translate.Translate
module Engine = Ppfx_minidb.Engine
module Database = Ppfx_minidb.Database
module Table = Ppfx_minidb.Table
module Value = Ppfx_minidb.Value
module Codec = Ppfx_minidb.Codec
module Xmark = Ppfx_workloads.Xmark
module Xparser = Ppfx_xpath.Parser

let store =
  lazy
    (Loader.shred (Xmark.schema ())
       (Doc.of_tree (Xmark.generate ~seed:7 ~items_per_region:2 ())))

let with_temp_file f =
  let path = Filename.temp_file "ppfx_codec" ".db" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let render (r : Engine.result) =
  String.concat "|" r.Engine.columns
  ^ "\n"
  ^ String.concat "\n"
      (List.map
         (fun row -> String.concat "," (Array.to_list (Array.map Value.to_string row)))
         r.Engine.rows)

let run_query db mapping query =
  let tr = Translate.create mapping in
  match Translate.translate tr (Xparser.parse query) with
  | None -> "(empty)"
  | Some stmt -> render (Engine.run db stmt)

let queries = [ "//keyword"; "//person[.//name]"; "//item[location]/name"; "//bidder" ]

let test_round_trip () =
  let st = Lazy.force store in
  with_temp_file (fun path ->
      Codec.save path st.Loader.db;
      let loaded = Codec.load path in
      Alcotest.(check int) "row total survives" (Database.total_rows st.Loader.db)
        (Database.total_rows loaded);
      List.iter
        (fun t ->
          let t' = Database.table loaded (Table.name t) in
          Alcotest.(check int)
            (Table.name t ^ " row count")
            (Table.row_count t) (Table.row_count t');
          Alcotest.(check int)
            (Table.name t ^ " column count")
            (List.length (Table.columns t))
            (List.length (Table.columns t'));
          (* Indexes are rebuilt on load: every index of the original is
             present (and usable) on the loaded table. *)
          List.iter
            (fun (cols, _) ->
              if Table.index_on t' cols = None then
                Alcotest.failf "%s: index on %s not rebuilt" (Table.name t)
                  (String.concat "," cols))
            (Table.indexes t))
        (Database.tables st.Loader.db))

let test_queries_agree () =
  let st = Lazy.force store in
  with_temp_file (fun path ->
      Codec.save path st.Loader.db;
      let loaded = Codec.load path in
      List.iter
        (fun q ->
          Alcotest.(check string) (q ^ " identical after reload")
            (run_query st.Loader.db st.Loader.mapping q)
            (run_query loaded st.Loader.mapping q))
        queries)

let test_compaction () =
  (* Deleting rows then saving compacts tombstones away: the reloaded
     table holds live_count rows (row ids are NOT stable across the
     cycle), and queries still agree between the two databases. *)
  let st = Lazy.force store in
  with_temp_file (fun path ->
      Codec.save path st.Loader.db;
      let working = Codec.load path in
      let keywords = Database.table working "keyword" in
      let victims = ref [] in
      Table.iter_rows (fun rowid _ -> if rowid mod 2 = 0 then victims := rowid :: !victims) keywords;
      List.iter (fun rowid -> ignore (Table.delete keywords rowid)) !victims;
      Alcotest.(check bool) "some rows tombstoned" true
        (Table.live_count keywords < Table.row_count keywords);
      with_temp_file (fun path2 ->
          Codec.save path2 working;
          let reloaded = Codec.load path2 in
          let keywords' = Database.table reloaded "keyword" in
          Alcotest.(check int) "tombstones compacted away"
            (Table.live_count keywords) (Table.row_count keywords');
          Alcotest.(check int) "reloaded rows all live"
            (Table.row_count keywords') (Table.live_count keywords');
          List.iter
            (fun q ->
              Alcotest.(check string) (q ^ " agrees after compaction")
                (run_query working st.Loader.mapping q)
                (run_query reloaded st.Loader.mapping q))
            queries))

let test_corrupt_rejected () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc "not a ppfx database";
      close_out oc;
      Alcotest.check Alcotest.bool "corrupt input rejected" true
        (match Codec.load path with
         | exception Codec.Corrupt _ -> true
         | _ -> false))

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "codec"
    [
      ( "round trip",
        List.map tc
          [
            "tables and indexes", test_round_trip;
            "queries agree", test_queries_agree;
            "compaction after deletes", test_compaction;
            "corrupt input", test_corrupt_rejected;
          ] );
    ]

(* Save/load round-trips for the binary database codec: table contents
   and indexes survive persistence (indexes are rebuilt, not stored), a
   reloaded store answers translated queries identically, and compaction
   of tombstoned rows keeps query results while renumbering row ids. *)

module Doc = Ppfx_xml.Doc
module Loader = Ppfx_shred.Loader
module Translate = Ppfx_translate.Translate
module Engine = Ppfx_minidb.Engine
module Database = Ppfx_minidb.Database
module Table = Ppfx_minidb.Table
module Value = Ppfx_minidb.Value
module Codec = Ppfx_minidb.Codec
module Xmark = Ppfx_workloads.Xmark
module Xparser = Ppfx_xpath.Parser

let store =
  lazy
    (Loader.shred (Xmark.schema ())
       (Doc.of_tree (Xmark.generate ~seed:7 ~items_per_region:2 ())))

let with_temp_file f =
  let path = Filename.temp_file "ppfx_codec" ".db" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let render (r : Engine.result) =
  String.concat "|" r.Engine.columns
  ^ "\n"
  ^ String.concat "\n"
      (List.map
         (fun row -> String.concat "," (Array.to_list (Array.map Value.to_string row)))
         r.Engine.rows)

let run_query db mapping query =
  let tr = Translate.create mapping in
  match Translate.translate tr (Xparser.parse query) with
  | None -> "(empty)"
  | Some stmt -> render (Engine.run db stmt)

let queries = [ "//keyword"; "//person[.//name]"; "//item[location]/name"; "//bidder" ]

let test_round_trip () =
  let st = Lazy.force store in
  with_temp_file (fun path ->
      Codec.save path st.Loader.db;
      let loaded = Codec.load path in
      Alcotest.(check int) "row total survives" (Database.total_rows st.Loader.db)
        (Database.total_rows loaded);
      List.iter
        (fun t ->
          let t' = Database.table loaded (Table.name t) in
          Alcotest.(check int)
            (Table.name t ^ " row count")
            (Table.row_count t) (Table.row_count t');
          Alcotest.(check int)
            (Table.name t ^ " column count")
            (List.length (Table.columns t))
            (List.length (Table.columns t'));
          (* Indexes are rebuilt on load: every index of the original is
             present (and usable) on the loaded table. *)
          List.iter
            (fun (cols, _) ->
              if Table.index_on t' cols = None then
                Alcotest.failf "%s: index on %s not rebuilt" (Table.name t)
                  (String.concat "," cols))
            (Table.indexes t);
          (* Content-index specs survive and their postings are rebuilt
             consistent with the loaded rows. *)
          Alcotest.(check (list (pair string bool)))
            (Table.name t ^ " content index spec")
            (List.map (fun (c, k) -> c, k = Table.Trigram) (Table.content_indexes t))
            (List.map (fun (c, k) -> c, k = Table.Trigram) (Table.content_indexes t'));
          (match Table.check_content_indexes t' with
           | Ok () -> ()
           | Error e ->
             Alcotest.failf "%s: rebuilt content index inconsistent: %s"
               (Table.name t) e))
        (Database.tables st.Loader.db))

let test_queries_agree () =
  let st = Lazy.force store in
  with_temp_file (fun path ->
      Codec.save path st.Loader.db;
      let loaded = Codec.load path in
      List.iter
        (fun q ->
          Alcotest.(check string) (q ^ " identical after reload")
            (run_query st.Loader.db st.Loader.mapping q)
            (run_query loaded st.Loader.mapping q))
        queries)

let test_compaction () =
  (* Deleting rows then saving compacts tombstones away: the reloaded
     table holds live_count rows (row ids are NOT stable across the
     cycle), and queries still agree between the two databases. *)
  let st = Lazy.force store in
  with_temp_file (fun path ->
      Codec.save path st.Loader.db;
      let working = Codec.load path in
      let keywords = Database.table working "keyword" in
      let victims = ref [] in
      Table.iter_rows (fun rowid _ -> if rowid mod 2 = 0 then victims := rowid :: !victims) keywords;
      List.iter (fun rowid -> ignore (Table.delete keywords rowid)) !victims;
      Alcotest.(check bool) "some rows tombstoned" true
        (Table.live_count keywords < Table.row_count keywords);
      with_temp_file (fun path2 ->
          Codec.save path2 working;
          let reloaded = Codec.load path2 in
          let keywords' = Database.table reloaded "keyword" in
          Alcotest.(check int) "tombstones compacted away"
            (Table.live_count keywords) (Table.row_count keywords');
          Alcotest.(check int) "reloaded rows all live"
            (Table.row_count keywords') (Table.live_count keywords');
          List.iter
            (fun q ->
              Alcotest.(check string) (q ^ " agrees after compaction")
                (run_query working st.Loader.mapping q)
                (run_query reloaded st.Loader.mapping q))
            queries))

(* Partitioned layout round-trips: the partition spec survives reload,
   reloaded segments satisfy the sorted-partition invariant, and the
   shredded store (partitioned by default) keeps answering queries
   through the cycle via the existing round-trip tests above. *)
let test_partitioned_round_trip () =
  let st = Lazy.force store in
  Alcotest.(check bool) "shredded store has partitioned fact tables" true
    (List.exists
       (fun t -> Table.partition_spec t <> None)
       (Database.tables st.Loader.db));
  with_temp_file (fun path ->
      Codec.save path st.Loader.db;
      let loaded = Codec.load path in
      List.iter
        (fun t ->
          let t' = Database.table loaded (Table.name t) in
          match Table.partition_spec t, Table.partition_spec t' with
          | Some s, Some s' ->
            Alcotest.(check string) "part col survives" s.Table.part_col
              s'.Table.part_col;
            Alcotest.(check string) "sort col survives" s.Table.part_sort
              s'.Table.part_sort;
            Alcotest.(check (list int))
              (Table.name t ^ " partition keys")
              (Table.partition_keys t) (Table.partition_keys t');
            (match Table.check_partitions t' with
             | Ok () -> ()
             | Error e -> Alcotest.failf "%s: %s" (Table.name t') e)
          | None, None -> ()
          | _ -> Alcotest.failf "%s: partition spec did not round-trip" (Table.name t))
        (Database.tables st.Loader.db))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Random small tables, partitioned or not, with a sprinkle of
   tombstones (save compacts them away): save -> load -> save must be
   byte-identical, so insertion order, partition tags and segment
   contents are all deterministic through the codec. *)
let gen_codec_case =
  QCheck.Gen.(
    pair (list_size (int_bound 40) (triple (int_range (-3) 12) (int_bound 9) bool)) bool)

let build_codec_case (rows, partitioned) =
  let db = Database.create () in
  let partition =
    if partitioned then Some { Table.part_col = "path_id"; part_sort = "id" } else None
  in
  let t =
    Database.create_table ?partition db ~name:"fact"
      ~columns:
        [ { Table.name = "id"; ty = Value.Tint };
          { Table.name = "path_id"; ty = Value.Tint };
          { Table.name = "val"; ty = Value.Tint } ]
  in
  List.iteri
    (fun i (pid, v, _) ->
      ignore (Table.insert t [| Value.Int i; Value.Int pid; Value.Int v |]))
    rows;
  List.iteri (fun i (_, _, del) -> if del then ignore (Table.delete t i)) rows;
  db

let prop_partitioned_codec_identity =
  QCheck.Test.make ~count:100 ~name:"partitioned save/load/save is byte-identical"
    (QCheck.make
       ~print:(fun (rows, partitioned) ->
         Printf.sprintf "%d rows, partitioned=%b" (List.length rows) partitioned)
       gen_codec_case)
    (fun case ->
      let db = build_codec_case case in
      with_temp_file (fun p1 ->
          Codec.save p1 db;
          let loaded = Codec.load p1 in
          let t' = Database.table loaded "fact" in
          (match Table.check_partitions t' with
           | Ok () -> ()
           | Error e -> QCheck.Test.fail_reportf "reloaded invariant: %s" e);
          with_temp_file (fun p2 ->
              Codec.save p2 loaded;
              read_file p1 = read_file p2)))

let test_corrupt_rejected () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc "not a ppfx database";
      close_out oc;
      Alcotest.check Alcotest.bool "corrupt input rejected" true
        (match Codec.load path with
         | exception Codec.Corrupt _ -> true
         | _ -> false))

let test_load_result_typed () =
  (match Codec.load_result "/nonexistent/ppfx/db" with
   | Error (Codec.Io_error _) -> ()
   | Error (Codec.Corrupted e) -> Alcotest.failf "expected Io_error, got Corrupted %s" e
   | Ok _ -> Alcotest.fail "missing file loaded");
  (match Codec.of_string_result "PPFXDB3 but then junk" with
   | Error (Codec.Corrupted _) -> ()
   | Error (Codec.Io_error e) -> Alcotest.failf "expected Corrupted, got Io_error %s" e
   | Ok _ -> Alcotest.fail "junk image loaded");
  Alcotest.(check bool) "errors render" true
    (String.length (Codec.error_to_string (Codec.Corrupted "x")) > 0)

(* Fuzz the decoder with mangled-but-plausible images: every truncation
   and every byte flip of a valid image must come back as a typed
   [Error] (or, for flips that happen to keep the image well-formed, an
   [Ok] database) — never a stray [Not_found]/[End_of_file]/[Failure] or
   a crash. *)
let image =
  lazy
    (let db = build_codec_case ([ (1, 2, false); (3, 4, false); (0, 5, true) ], true) in
     Codec.database_to_string db)

let no_stray_exn what f =
  match f () with
  | Ok (_ : Database.t) | Error (_ : Codec.error) -> true
  | exception e ->
    QCheck.Test.fail_reportf "%s leaked exception %s" what (Printexc.to_string e)

let prop_truncations_rejected =
  QCheck.Test.make ~count:200 ~name:"every truncation of a valid image is typed"
    QCheck.(int_bound 10000)
    (fun n ->
      let s = Lazy.force image in
      let cut = n mod String.length s in
      let sub = String.sub s 0 cut in
      no_stray_exn (Printf.sprintf "truncation at %d" cut) (fun () ->
          Codec.of_string_result sub)
      && (* a strict prefix can never decode as complete *)
      match Codec.of_string_result sub with
      | Ok _ -> QCheck.Test.fail_reportf "truncation at %d decoded" cut
      | Error _ -> true)

let prop_bit_flips_contained =
  QCheck.Test.make ~count:400 ~name:"every byte flip of a valid image is contained"
    QCheck.(pair (int_bound 100000) (int_range 1 255))
    (fun (pos, x) ->
      let s = Lazy.force image in
      let pos = pos mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor x));
      no_stray_exn
        (Printf.sprintf "flip 0x%02x at %d" x pos)
        (fun () -> Codec.of_string_result (Bytes.to_string b)))

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "codec"
    [
      ( "round trip",
        List.map tc
          [
            "tables and indexes", test_round_trip;
            "queries agree", test_queries_agree;
            "compaction after deletes", test_compaction;
            "partitioned layout", test_partitioned_round_trip;
            "corrupt input", test_corrupt_rejected;
            "typed load errors", test_load_result_typed;
          ] );
      ( "round-trip properties",
        [ QCheck_alcotest.to_alcotest prop_partitioned_codec_identity ] );
      ( "corruption fuzz",
        List.map QCheck_alcotest.to_alcotest
          [ prop_truncations_rejected; prop_bit_flips_contained ] );
    ]

(* Tests for the sharded scatter-gather cluster: the domain pool, the
   frontier partitioner, the shard-safety analysis over hand-built SQL,
   the Dewey k-way merge, coordinator behaviour (routing, fallbacks,
   invalidation across loads), and qcheck differential properties pinning
   sharded execution byte-identical to the unsharded engine. *)

module Doc = Ppfx_xml.Doc
module Loader = Ppfx_shred.Loader
module Translate = Ppfx_translate.Translate
module Engine = Ppfx_minidb.Engine
module Database = Ppfx_minidb.Database
module Table = Ppfx_minidb.Table
module Value = Ppfx_minidb.Value
module Sql = Ppfx_minidb.Sql
module Xmark = Ppfx_workloads.Xmark
module Xparser = Ppfx_xpath.Parser
module Session = Ppfx_service.Session
module Metrics = Ppfx_service.Metrics
module Pool = Ppfx_cluster.Pool
module Partition = Ppfx_cluster.Partition
module Analysis = Ppfx_cluster.Analysis
module Merge = Ppfx_cluster.Merge
module Cluster = Ppfx_cluster.Cluster

let schema = Xmark.schema ()

let tree1 = lazy (Xmark.generate ~seed:1 ~items_per_region:3 ())
let tree2 = lazy (Xmark.generate ~seed:2 ~items_per_region:2 ())
let doc1 = lazy (Doc.of_tree (Lazy.force tree1))
let doc2 = lazy (Doc.of_tree (Lazy.force tree2))

(* One shared cluster for the differential property: pool smaller than
   the shard count, so tasks genuinely queue behind busy workers. *)
let shared_cluster =
  lazy (Cluster.create ~pool_size:2 ~shards:3 schema [ Lazy.force tree1 ])

let shared_cluster4 =
  lazy (Cluster.create ~pool_size:2 ~shards:4 schema [ Lazy.force tree1 ])

let render (r : Engine.result) =
  String.concat "|" r.Engine.columns
  ^ "\n"
  ^ String.concat "\n"
      (List.map
         (fun row -> String.concat "," (Array.to_list (Array.map Value.to_string row)))
         r.Engine.rows)

let cold_render (store : Loader.t) query =
  let expr = Xparser.parse query in
  let tr = Translate.create store.Loader.mapping in
  match Translate.translate tr expr with
  | None -> "(empty)"
  | Some stmt -> render (Engine.run store.Loader.db stmt)

let cluster_render cluster query =
  let p = Cluster.prepare cluster query in
  match Session.sql p with
  | None -> "(empty)"
  | Some _ -> render (Cluster.execute cluster p)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_inline () =
  let pool = Pool.create 0 in
  Alcotest.(check int) "size" 0 (Pool.size pool);
  let fut = Pool.submit pool (fun () -> 6 * 7) in
  Alcotest.(check int) "inline result" 42 (Pool.await fut);
  Alcotest.(check bool) "negligible queue wait inline" true
    (Pool.queue_wait fut < 1e-3);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *)

let test_pool_parallel () =
  Pool.with_pool 2 (fun pool ->
      let futs = List.init 20 (fun i -> Pool.submit pool (fun () -> i * i)) in
      List.iteri
        (fun i fut ->
          Alcotest.(check int) (Printf.sprintf "task %d" i) (i * i) (Pool.await fut);
          Alcotest.(check bool) "non-negative queue wait" true
            (Pool.queue_wait fut >= 0.0))
        futs)

let test_pool_exceptions () =
  Pool.with_pool 1 (fun pool ->
      let fut = Pool.submit pool (fun () -> failwith "boom") in
      Alcotest.check Alcotest.bool "exception propagates" true
        (match Pool.await fut with
         | exception Failure m -> m = "boom"
         | _ -> false);
      (* The worker survives a failed task. *)
      let fut2 = Pool.submit pool (fun () -> 7) in
      Alcotest.(check int) "worker alive after failure" 7 (Pool.await fut2))

let test_pool_shutdown_rejects () =
  let pool = Pool.create 1 in
  Pool.shutdown pool;
  Alcotest.check Alcotest.bool "submit after shutdown rejected" true
    (match Pool.submit pool (fun () -> ()) with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)
(* ------------------------------------------------------------------ *)

let test_partition_covers () =
  let doc = Lazy.force doc1 in
  let shards = 4 in
  let p = Partition.compute ~shards doc in
  let counts = Partition.counts p in
  let spine = Partition.replicated p in
  Alcotest.(check int) "counts + spine cover the document" (Doc.size doc)
    (Array.fold_left ( + ) 0 counts + List.length spine);
  (* Every element is kept by exactly one shard, or by all (spine). *)
  Doc.iter
    (fun e ->
      let keepers = ref 0 in
      for s = 0 to shards - 1 do
        if Partition.keep p ~shard:s e then incr keepers
      done;
      if !keepers <> 1 && !keepers <> shards then
        Alcotest.failf "element %d kept by %d of %d shards" e.Doc.id !keepers shards)
    doc

let test_partition_spine_closed () =
  (* The spine is ancestor-closed: a split element's parent is split. *)
  let doc = Lazy.force doc1 in
  let p = Partition.compute ~shards:4 doc in
  let spine = Partition.replicated p in
  Alcotest.(check bool) "root is spine" true
    (List.mem (Doc.root doc).Doc.id spine);
  List.iter
    (fun id ->
      let e = Doc.element doc id in
      if e.Doc.parent <> 0 && not (List.mem e.Doc.parent spine) then
        Alcotest.failf "spine element %d has non-spine parent %d" id e.Doc.parent)
    spine

let test_partition_balance () =
  let doc = Lazy.force doc1 in
  let shards = 4 in
  let counts = Partition.counts (Partition.compute ~shards doc) in
  let total = Array.fold_left ( + ) 0 counts in
  let ideal = total / shards in
  Array.iteri
    (fun s c ->
      if c < ideal / 2 || c > ideal + ideal / 2 then
        Alcotest.failf "shard %d holds %d elements (ideal %d)" s c ideal)
    counts

let test_partition_single_shard () =
  let doc = Lazy.force doc1 in
  let p = Partition.compute ~shards:1 doc in
  Alcotest.(check int) "one shard holds every non-spine element"
    (Doc.size doc - List.length (Partition.replicated p))
    (Partition.counts p).(0);
  Doc.iter
    (fun e ->
      Alcotest.(check bool) "everything kept" true (Partition.keep p ~shard:0 e))
    doc

(* ------------------------------------------------------------------ *)
(* Shard stores: row accounting                                        *)
(* ------------------------------------------------------------------ *)

let test_store_accounting () =
  let doc = Lazy.force doc1 in
  let shards = 3 in
  let p = Partition.compute ~shards doc in
  let spine = List.length (Partition.replicated p) in
  Cluster.with_cluster ~pool_size:0 ~shards schema [ Lazy.force tree1 ]
    (fun c ->
      let full = Session.store (Cluster.session c) in
      let full_paths = Table.row_count (Database.table full.Loader.db "paths") in
      let full_nodes = Database.total_rows full.Loader.db - full_paths in
      Alcotest.(check int) "full store holds the whole document" (Doc.size doc)
        full_nodes;
      let stores = Cluster.shard_stores c in
      let shard_nodes = ref 0 in
      Array.iter
        (fun (st : Loader.t) ->
          let paths = Table.row_count (Database.table st.Loader.db "paths") in
          Alcotest.(check int) "paths relation replicated in full" full_paths paths;
          shard_nodes := !shard_nodes + Database.total_rows st.Loader.db - paths)
        stores;
      Alcotest.(check int) "node rows = full + (N-1) * spine"
        (full_nodes + ((shards - 1) * spine))
        !shard_nodes)

(* ------------------------------------------------------------------ *)
(* Analysis over hand-built SQL                                        *)
(* ------------------------------------------------------------------ *)

let dewey a = Sql.Col (a, "dewey_pos")

let base_select ?(from = [ "item", "n" ]) ?where () =
  {
    Sql.distinct = true;
    projections =
      [
        Sql.Col ("n", "id"), "id"; dewey "n", "dewey_pos"; Sql.Col ("n", "text"), "value";
      ];
    from;
    where;
    order_by = [ dewey "n" ];
  }

let check_verdict name expected verdict =
  let to_str = function
    | Analysis.Partitionable -> "partitionable"
    | Analysis.Order_partitionable _ -> "order-partitionable"
    | Analysis.Fallback r -> "fallback: " ^ r
  in
  let matches =
    match expected, verdict with
    | `Partitionable, Analysis.Partitionable -> true
    | `Order, Analysis.Order_partitionable _ -> true
    | `Fallback, Analysis.Fallback _ -> true
    | _ -> false
  in
  if not matches then Alcotest.failf "%s: unexpected verdict %s" name (to_str verdict)

let test_analysis_shapes () =
  let analyze ?(bfks = [ "site_id" ]) stmt = Analysis.analyze ~boundary_fks:bfks stmt in
  let upper a = Sql.Concat (dewey a, Sql.Const (Value.Bin "\xff")) in
  let j2 = [ "item", "n"; "item", "n2" ] in
  check_verdict "plain scan" `Partitionable (analyze (Sql.Select (base_select ())));
  check_verdict "top-level count" `Fallback (analyze (Sql.Select_count (base_select ())));
  check_verdict "containment join" `Partitionable
    (analyze
       (Sql.Select
          (base_select ~from:j2
             ~where:(Sql.Between (dewey "n", dewey "n2", upper "n2"))
             ())));
  check_verdict "order-axis comparison" `Order
    (analyze
       (Sql.Select (base_select ~from:j2 ~where:(Sql.Cmp (Sql.Gt, dewey "n", upper "n2")) ())));
  check_verdict "order-axis under OR" `Order
    (analyze
       (Sql.Select
          (base_select ~from:j2
             ~where:
               (Sql.Or
                  ( Sql.Cmp (Sql.Eq, Sql.Col ("n", "id"), Sql.Col ("n2", "id")),
                    Sql.Cmp (Sql.Lt, upper "n2", dewey "n") ))
             ())));
  check_verdict "bare sibling order refinement" `Partitionable
    (analyze
       (Sql.Select
          (base_select ~from:j2
             ~where:
               (Sql.And
                  ( Sql.Cmp
                      (Sql.Eq, Sql.Col ("n", "africa_id"), Sql.Col ("n2", "africa_id")),
                    Sql.Cmp (Sql.Gt, dewey "n", dewey "n2") ))
             ())));
  check_verdict "sibling join at the boundary" `Order
    (analyze
       (Sql.Select
          (base_select ~from:j2
             ~where:(Sql.Cmp (Sql.Eq, Sql.Col ("n", "site_id"), Sql.Col ("n2", "site_id")))
             ())));
  check_verdict "fk join" `Partitionable
    (analyze
       (Sql.Select
          (base_select ~from:[ "item", "n"; "paths", "p" ]
             ~where:(Sql.Cmp (Sql.Eq, Sql.Col ("n", "path_id"), Sql.Col ("p", "id")))
             ())));
  (* A general cross-alias comparison is not shard-local, but it is a
     perfectly good coordinator conjunct: the two-sided decomposition
     rescues it too. *)
  check_verdict "cross-alias value join" `Order
    (analyze
       (Sql.Select
          (base_select ~from:j2
             ~where:(Sql.Cmp (Sql.Eq, Sql.Col ("n", "text"), Sql.Col ("n2", "text")))
             ())));
  let exists_inner ~correlated =
    {
      Sql.distinct = false;
      projections = [ Sql.Const Value.Null, "x" ];
      from = [ "person", "p" ];
      where =
        (if correlated then Some (Sql.Between (dewey "p", dewey "n", upper "n"))
         else None);
      order_by = [];
    }
  in
  check_verdict "correlated EXISTS" `Partitionable
    (analyze (Sql.Select (base_select ~where:(Sql.Exists (exists_inner ~correlated:true)) ())));
  check_verdict "uncorrelated EXISTS" `Fallback
    (analyze
       (Sql.Select (base_select ~where:(Sql.Exists (exists_inner ~correlated:false)) ())));
  check_verdict "COUNT sub-query" `Fallback
    (analyze
       (Sql.Select
          (base_select
             ~where:
               (Sql.Cmp
                  ( Sql.Eq,
                    Sql.Count_subquery (exists_inner ~correlated:true),
                    Sql.Const (Value.Int 2) ))
             ())));
  (* Without a projected statement-wide ordering there is nothing to
     merge on. *)
  check_verdict "unmergeable ordering" `Fallback
    (analyze (Sql.Select { (base_select ()) with Sql.order_by = [] }))

let test_merge_key () =
  let sel = base_select () in
  Alcotest.(check (option int)) "select keys on its dewey projection" (Some 1)
    (Analysis.merge_key (Sql.Select sel));
  Alcotest.(check (option int)) "union keys on its order column" (Some 1)
    (Analysis.merge_key (Sql.Union ([ sel; sel ], [ 1 ])));
  Alcotest.(check (option int)) "unordered union has no key" None
    (Analysis.merge_key (Sql.Union ([ sel; sel ], [])));
  Alcotest.(check (option int)) "count has no key" None
    (Analysis.merge_key (Sql.Select_count sel))

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)
(* ------------------------------------------------------------------ *)

let result_of rows = { Engine.columns = [ "id" ]; rows }

let test_merge_round_robin () =
  let rows = List.init 30 (fun i -> [| Value.Int (i * 3) |]) in
  let nth_list k = List.filteri (fun i _ -> i mod 3 = k) rows in
  let root = [| Value.Int (-1) |] in
  let shards = List.init 3 (fun k -> result_of (root :: nth_list k)) in
  let merged = Merge.merge ~key:0 shards in
  Alcotest.(check int) "root deduplicated" (List.length rows + 1)
    (List.length merged.Engine.rows);
  Alcotest.(check string) "merged equals the full ordered result"
    (render (result_of (root :: rows)))
    (render merged)

let prop_merge_partition =
  QCheck.Test.make ~count:200 ~name:"k-way merge restores any sharding of a sorted result"
    QCheck.(pair (small_list small_int) (int_range 1 5))
    (fun (xs, k) ->
      let rows = List.sort_uniq compare xs |> List.map (fun i -> [| Value.Int i |]) in
      (* Deterministic pseudo-random assignment of rows to k shards. *)
      let lists = Array.make k [] in
      List.iteri (fun i row -> lists.(i * 7919 mod k) <- row :: lists.(i * 7919 mod k)) rows;
      let shards = Array.to_list (Array.map (fun l -> result_of (List.rev l)) lists) in
      let merged = Merge.merge ~key:0 shards in
      render merged = render (result_of rows))

let prop_merge_replicated_root =
  QCheck.Test.make ~count:200
    ~name:"rows present in every shard collapse to one copy"
    QCheck.(small_list small_int)
    (fun xs ->
      let rows = List.sort_uniq compare xs |> List.map (fun i -> [| Value.Int i |]) in
      let root = [| Value.Int (-1) |] in
      let shards = List.init 3 (fun k ->
          result_of (root :: List.filteri (fun i _ -> i mod 3 = k) rows))
      in
      let merged = Merge.merge ~key:0 shards in
      render merged = render (result_of (root :: rows)))

(* ------------------------------------------------------------------ *)
(* Coordinator behaviour                                               *)
(* ------------------------------------------------------------------ *)

let test_cluster_routing () =
  let c = Lazy.force shared_cluster in
  (match Cluster.verdict c "//item" with
   | Some Analysis.Partitionable -> ()
   | v ->
     Alcotest.failf "//item should scatter, got %s"
       (match v with
        | None -> "empty"
        | Some (Analysis.Fallback r) -> "fallback: " ^ r
        | Some _ -> "?"));
  (match Cluster.verdict c "//item/following::item" with
   | Some (Analysis.Order_partitionable _) -> ()
   | Some (Analysis.Fallback r) ->
     Alcotest.failf "following:: should order-scatter, fell back: %s" r
   | _ -> Alcotest.fail "following:: should order-scatter");
  (match Cluster.verdict c "//parlist[count(listitem) >= 2]" with
   | Some (Analysis.Fallback _) -> ()
   | _ -> Alcotest.fail "COUNT sub-query should fall back");
  Alcotest.(check (option string)) "provably empty query" None
    (Option.map (fun _ -> "") (Cluster.verdict c "/site/person"));
  Alcotest.(check (list int)) "empty query returns nothing" []
    (Cluster.run_ids c "/site/person")

let test_cluster_equals_session_on_xpathmark () =
  let c = Lazy.force shared_cluster in
  let session = Session.of_doc ~schema (Lazy.force doc1) in
  List.iter
    (fun (name, q) ->
      Alcotest.(check (list int))
        (name ^ " agrees with the unsharded session")
        (Session.run_ids session q) (Cluster.run_ids c q))
    Xmark.queries

let test_cluster_metrics () =
  Cluster.with_cluster ~pool_size:0 ~shards:3 schema [ Lazy.force tree1 ] (fun c ->
      let ids = Cluster.run_ids c "//keyword" in
      Alcotest.(check bool) "some keywords" true (ids <> []);
      let m = Cluster.metrics c in
      Alcotest.(check int) "one query" 1 (Metrics.queries m);
      Alcotest.(check int) "no fallback" 0 (Metrics.fallbacks m);
      Alcotest.(check int) "merge recorded" 1 (Metrics.stage_count m Metrics.Merge);
      Alcotest.(check int) "rows recorded" (List.length ids) (Metrics.rows m);
      Array.iteri
        (fun s sm ->
          Alcotest.(check int) (Printf.sprintf "shard %d executed once" s) 1
            (Metrics.stage_count sm Metrics.Execute);
          Alcotest.(check int) (Printf.sprintf "shard %d queue recorded" s) 1
            (Metrics.stage_count sm Metrics.Queue))
        (Cluster.shard_metrics c);
      (match Cluster.last_stats c with
       | None -> Alcotest.fail "scatter stats missing"
       | Some s ->
         (* keyword is never a spine relation, so shard results are
            disjoint and sum exactly to the merged total *)
         Alcotest.(check int) "per-shard rows sum to the merged total"
           (List.length ids)
           (Array.fold_left ( + ) 0 s.Cluster.shard_rows));
      ignore (Cluster.run_ids c "//item/following::item");
      Alcotest.(check int) "order axis is not a fallback" 0
        (Metrics.fallbacks (Cluster.metrics c));
      Alcotest.(check int) "order-axis side merges recorded" 2
        (Metrics.stage_count (Cluster.metrics c) Metrics.Merge);
      ignore (Cluster.run_ids c "//parlist[count(listitem) >= 2]");
      Alcotest.(check int) "fallback counted" 1 (Metrics.fallbacks (Cluster.metrics c)))

(* Order-axis queries must route through the two-sided decomposition
   (Order_partitionable — no single-store fallback) and still come back
   byte-identical to unsharded execution, on more than one shard. *)
let test_cluster_order_axis_scatter () =
  let queries =
    [
      "//item/following::item";
      "//item/preceding::item";
      "/site/regions/*/item/following::person";
      "//person/preceding::item/name";
    ]
  in
  List.iter
    (fun cluster ->
      let c = Lazy.force cluster in
      let full = Session.store (Cluster.session c) in
      List.iter
        (fun q ->
          (match Cluster.verdict c q with
           | Some (Analysis.Order_partitionable _) -> ()
           | Some (Analysis.Fallback r) ->
             Alcotest.failf "%s should order-scatter, fell back: %s" q r
           | Some Analysis.Partitionable ->
             Alcotest.failf "%s unexpectedly plain-partitionable" q
           | None -> Alcotest.failf "%s translated to nothing" q);
          Alcotest.(check string)
            (Printf.sprintf "%s byte-identical on %d shards" q (Cluster.shards c))
            (cold_render full q) (cluster_render c q))
        queries)
    [ shared_cluster; shared_cluster4 ]

let test_cluster_load_invalidates () =
  Cluster.with_cluster ~pool_size:0 ~shards:2 schema [ Lazy.force tree1 ] (fun c ->
      let before = Cluster.run_ids c "//keyword" in
      Cluster.load c (Lazy.force tree1);
      let after = Cluster.run_ids c "//keyword" in
      Alcotest.(check int) "identical second document doubles the answer"
        (2 * List.length before) (List.length after);
      let invalidations =
        Array.fold_left
          (fun acc sm -> acc + Metrics.invalidations sm)
          0 (Cluster.shard_metrics c)
      in
      Alcotest.(check bool) "shard plans re-prepared after the load" true
        (invalidations >= 1);
      let session = Session.of_doc ~schema (Lazy.force doc1) in
      Session.load session (Lazy.force doc1);
      Alcotest.(check (list int)) "agrees with unsharded session after load"
        (Session.run_ids session "//keyword") after)

let test_cluster_multi_doc_create () =
  Cluster.with_cluster ~pool_size:0 ~shards:3 schema
    [ Lazy.force tree1; Lazy.force tree2 ]
    (fun c ->
      let session = Session.of_doc ~schema (Lazy.force doc1) in
      Session.load session (Lazy.force doc2);
      List.iter
        (fun q ->
          Alcotest.(check (list int)) (q ^ " over two documents")
            (Session.run_ids session q) (Cluster.run_ids c q))
        [ "//keyword"; "//person[.//name]"; "//item/following-sibling::item" ])

(* ------------------------------------------------------------------ *)
(* Differential properties                                             *)
(* ------------------------------------------------------------------ *)

(* Random queries over the XMark vocabulary; order-axis steps included
   so both the scatter and the fallback path are exercised. *)
let gen_query =
  let open QCheck.Gen in
  let name =
    oneofl
      [
        "site"; "regions"; "africa"; "asia"; "item"; "location"; "quantity"; "name";
        "description"; "parlist"; "listitem"; "text"; "keyword"; "emph"; "mailbox";
        "mail"; "people"; "person"; "address"; "city"; "country"; "open_auctions";
        "open_auction"; "bidder"; "increase"; "personref"; "interval"; "start"; "date";
        "closed_auctions"; "closed_auction"; "annotation"; "author"; "seller";
      ]
  in
  let test = frequency [ 5, name; 1, return "*" ] in
  let step =
    frequency
      [
        4, map (fun t -> "/" ^ t) test;
        3, map (fun t -> "//" ^ t) test;
        1, map (fun t -> "/following-sibling::" ^ t) name;
        1, map (fun t -> "/preceding-sibling::" ^ t) name;
        1, map (fun t -> "/following::" ^ t) name;
        1, map (fun t -> "/preceding::" ^ t) name;
      ]
  in
  let predicate =
    oneof
      [
        map (fun n -> "[" ^ n ^ "]") name;
        map (fun n -> "[.//" ^ n ^ "]") name;
        map (fun n -> "[parent::" ^ n ^ "]") name;
        map (fun n -> "[ancestor::" ^ n ^ "]") name;
        return "[@id]";
        return "[@featured = 'yes']";
        return "[position() = 2]";
        map2 (fun a b -> "[" ^ a ^ " or " ^ b ^ "]") name name;
      ]
  in
  map2
    (fun first steps ->
      "//" ^ first ^ String.concat "" (List.map (fun (s, p) -> s ^ p) steps))
    name
    (list_size (int_range 0 3) (pair step (oneof [ return ""; predicate ])))

let prop_sharded_equals_unsharded =
  QCheck.Test.make ~count:150
    ~name:"sharded scatter-gather execution is byte-identical to the unsharded engine"
    (QCheck.make ~print:(fun q -> q) gen_query)
    (fun query ->
      let c = Lazy.force shared_cluster in
      let full = Session.store (Cluster.session c) in
      match cold_render full query with
      | exception Xparser.Error _ -> QCheck.assume_fail ()
      | exception Translate.Unsupported _ -> QCheck.assume_fail ()
      | cold ->
        let sharded = cluster_render c query in
        if sharded <> cold then
          QCheck.Test.fail_reportf
            "query %s: sharded result differs\nunsharded:\n%s\nsharded:\n%s" query cold
            sharded
        else true)

(* The cluster's sessions prepare every shard plan with the default
   optimizer pass on (semi-join reduction + hash joins). A 4-shard
   scatter must stay byte-identical to the unsharded engine running with
   every optimization disabled — the optimizer differential and the
   partitioning differential checked in one property. *)
let opts_off =
  {
    Engine.semijoin_reduction = false;
    hash_join = false;
    force_hash_join = false;
    merge_join = false;
    force_merge_join = false;
    content_probe = false;
  }

let unopt_render (store : Loader.t) query =
  let expr = Xparser.parse query in
  let tr = Translate.create store.Loader.mapping in
  match Translate.translate tr expr with
  | None -> "(empty)"
  | Some stmt -> render (Engine.run ~opts:opts_off store.Loader.db stmt)

let prop_optimized_sharded_equals_unoptimized =
  QCheck.Test.make ~count:120
    ~name:"4-shard optimized execution matches the unoptimized single store"
    (QCheck.make ~print:(fun q -> q) gen_query)
    (fun query ->
      let c = Lazy.force shared_cluster4 in
      let full = Session.store (Cluster.session c) in
      match unopt_render full query with
      | exception Xparser.Error _ -> QCheck.assume_fail ()
      | exception Translate.Unsupported _ -> QCheck.assume_fail ()
      | unopt ->
        let sharded = cluster_render c query in
        if sharded <> unopt then
          QCheck.Test.fail_reportf
            "query %s: optimized sharded result differs\nunoptimized:\n%s\nsharded:\n%s"
            query unopt sharded
        else true)

(* ------------------------------------------------------------------ *)

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "cluster"
    [
      ( "pool",
        List.map tc
          [
            "inline", test_pool_inline;
            "parallel", test_pool_parallel;
            "exceptions", test_pool_exceptions;
            "shutdown rejects", test_pool_shutdown_rejects;
          ] );
      ( "partition",
        List.map tc
          [
            "covers", test_partition_covers;
            "spine closed", test_partition_spine_closed;
            "balance", test_partition_balance;
            "single shard", test_partition_single_shard;
          ] );
      ("stores", List.map tc [ "row accounting", test_store_accounting ]);
      ( "analysis",
        List.map tc
          [ "verdict shapes", test_analysis_shapes; "merge key", test_merge_key ] );
      ( "merge",
        List.map tc [ "round robin", test_merge_round_robin ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_merge_partition; prop_merge_replicated_root ] );
      ( "coordinator",
        List.map tc
          [
            "routing", test_cluster_routing;
            "equals session on XPathMark", test_cluster_equals_session_on_xpathmark;
            "order-axis scatter", test_cluster_order_axis_scatter;
            "metrics", test_cluster_metrics;
            "load invalidates", test_cluster_load_invalidates;
            "multi-document create", test_cluster_multi_doc_create;
          ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sharded_equals_unsharded; prop_optimized_sharded_equals_unoptimized ] );
    ]

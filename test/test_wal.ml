(* Tests for the durability layer (lib/wal): CRC framing, torn-tail
   truncation, atomic manifests, record/meta serialization, checkpoint
   rotation, clean-shutdown scan skipping — and the load-bearing
   property, the crash-recovery differential: a workload run under
   deterministic fault injection, crashed at EVERY durable op (plain
   drops, short writes, bit flips), must recover to exactly the
   persisted prefix of acked commits — byte-identical query results, no
   label rewrites, partition invariants intact — on a single store and
   across a 4-shard cluster. *)

module Tree = Ppfx_xml.Tree
module Doc = Ppfx_xml.Doc
module Xmlparser = Ppfx_xml.Parser
module Graph = Ppfx_schema.Graph
module Database = Ppfx_minidb.Database
module Table = Ppfx_minidb.Table
module Loader = Ppfx_shred.Loader
module Update = Ppfx_update.Update
module Session = Ppfx_service.Session
module Metrics = Ppfx_service.Metrics
module Cluster = Ppfx_cluster.Cluster
module Xmark = Ppfx_workloads.Xmark
module Server = Ppfx_net.Server
module Crc32 = Ppfx_wal.Crc32
module Io = Ppfx_wal.Io
module Log = Ppfx_wal.Log
module Manifest = Ppfx_wal.Manifest
module Record = Ppfx_wal.Record
module Wstore = Ppfx_wal.Store

(* ------------------------------------------------------------------ *)
(* Scratch directories                                                 *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ppfx-wal-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  d

let with_dir f =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Unit: CRC-32                                                        *)
(* ------------------------------------------------------------------ *)

let test_crc32_vectors () =
  Alcotest.(check int) "empty string" 0 (Crc32.digest "");
  (* the IEEE 802.3 check value *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.digest "123456789");
  Alcotest.(check int) "single byte" 0xE8B7BE43 (Crc32.digest "a");
  let s = "the quick brown fox jumps over the lazy dog" in
  let split = 17 in
  let c = Crc32.update 0 s 0 split in
  let c = Crc32.update c s split (String.length s - split) in
  Alcotest.(check int) "incremental update equals one-shot digest"
    (Crc32.digest s) c

(* ------------------------------------------------------------------ *)
(* Unit: segment framing and tail truncation                           *)
(* ------------------------------------------------------------------ *)

let segment payloads = Log.magic ^ String.concat "" (List.map Log.frame payloads)

let test_log_scan () =
  let payloads = [ "a"; "bb"; "ccc and a longer one" ] in
  let s = segment payloads in
  let scan = Log.scan_string s in
  Alcotest.(check (list string)) "all payloads recovered in order" payloads
    (List.map fst scan.Log.frames);
  Alcotest.(check int) "valid to the end" (String.length s) scan.Log.valid_end;
  Alcotest.(check int) "file length reported" (String.length s) scan.Log.file_len

let test_log_torn_tail () =
  let s = segment [ "first"; "second" ] in
  (* tear the last frame: drop its final 3 bytes *)
  let torn = String.sub s 0 (String.length s - 3) in
  let scan = Log.scan_string torn in
  Alcotest.(check (list string)) "only the whole frame survives" [ "first" ]
    (List.map fst scan.Log.frames);
  Alcotest.(check bool) "a nonempty tail is reported" true
    (scan.Log.file_len - scan.Log.valid_end > 0)

let test_log_bit_flip () =
  let s = segment [ "first"; "second"; "third" ] in
  (* flip one bit inside the middle frame's payload *)
  let b = Bytes.of_string s in
  let pos = String.length (segment [ "first" ]) + 8 + 1 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
  let scan = Log.scan_string (Bytes.to_string b) in
  Alcotest.(check (list string)) "scan stops at the corrupt frame" [ "first" ]
    (List.map fst scan.Log.frames)

let test_log_bad_magic () =
  let scan = Log.scan_string ("XXXXXXXX" ^ Log.frame "payload") in
  Alcotest.(check int) "no frames behind a bad magic" 0
    (List.length scan.Log.frames);
  let empty = Log.scan_string "" in
  Alcotest.(check int) "empty file has no frames" 0 (List.length empty.Log.frames)

(* ------------------------------------------------------------------ *)
(* Unit: the manifest is atomic at every crash point                   *)
(* ------------------------------------------------------------------ *)

let test_manifest_round_trip () =
  with_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let m = { Manifest.gen = 3; base_seq = 17; clean = false } in
  Manifest.write Io.live ~dir m;
  (match Manifest.read ~dir with
   | Ok m' ->
     Alcotest.(check int) "gen" m.Manifest.gen m'.Manifest.gen;
     Alcotest.(check int) "base_seq" m.Manifest.base_seq m'.Manifest.base_seq;
     Alcotest.(check bool) "clean" false m'.Manifest.clean
   | Error e -> Alcotest.failf "read back: %s" e);
  Manifest.write Io.live ~dir { m with Manifest.clean = true };
  match Manifest.read ~dir with
  | Ok m' -> Alcotest.(check bool) "clean marker round-trips" true m'.Manifest.clean
  | Error e -> Alcotest.failf "read back: %s" e

let test_manifest_atomic_replace () =
  with_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let old_m = { Manifest.gen = 1; base_seq = 4; clean = false } in
  let new_m = { Manifest.gen = 2; base_seq = 9; clean = false } in
  (* [atomic_write] is tmp-write, fsync, rename, dir-fsync: a crash on
     any op before the rename leaves the old manifest; once the rename
     completed, the new one. *)
  for k = 0 to 3 do
    let io = Io.create () in
    Manifest.write io ~dir old_m;
    let base = Io.ops io in
    Io.arm io ~crash_at:(base + k) ();
    (match Manifest.write io ~dir new_m with
     | () -> Alcotest.failf "crash point %d did not fire" k
     | exception Io.Crashed _ -> ());
    match Manifest.read ~dir with
    | Error e -> Alcotest.failf "crash point %d left no readable manifest: %s" k e
    | Ok m ->
      let expect = if k <= 2 then old_m.Manifest.gen else new_m.Manifest.gen in
      Alcotest.(check int)
        (Printf.sprintf "crash point %d: old or new, never torn" k)
        expect m.Manifest.gen
  done

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let small_xml =
  {|<site>
  <people>
    <person id="p1"><name>ann</name><address><city>oslo</city></address></person>
    <person id="p2"><name>bob</name></person>
    <person id="p3"><name>cyd</name></person>
  </people>
  <items>
    <item id="i1"><name>gold ring</name></item>
  </items>
</site>|}

let small () =
  let tree = Xmlparser.parse small_xml in
  let schema = Graph.infer (Doc.of_tree tree) in
  Update.create schema [ tree ]

let find_by_tag u tag =
  let ids =
    Hashtbl.fold
      (fun id _ acc -> if String.equal (Update.node_tag u id) tag then id :: acc else acc)
      (Update.ranks u) []
  in
  List.sort compare ids

let the_one u tag =
  match find_by_tag u tag with
  | [ id ] -> id
  | ids -> Alcotest.failf "expected one <%s>, found %d" tag (List.length ids)

let frag = Xmlparser.parse
let run_q u q = Session.run_ids (Session.create (Update.store u)) q

(* Append-before-apply: the discipline production code follows. *)
let logged_exec u w op =
  let cs = Update.stage u op in
  ignore (Wstore.append w ~op cs : int);
  Update.commit (Update.db u) cs;
  Update.outcome_of cs

let small_op_insert u =
  Update.Insert_subtree
    { parent = the_one u "people"; before = None;
      fragment = frag {|<person id="p9"><name>wal</name></person>|} }

let small_op_text u =
  Update.Set_text { target = the_one u "city"; text = "reykjavik" }

(* ------------------------------------------------------------------ *)
(* Unit: record and checkpoint-sidecar serialization                   *)
(* ------------------------------------------------------------------ *)

let test_record_round_trip () =
  let u = small () in
  let op = small_op_insert u in
  let cs = Update.stage u op in
  let r =
    { Record.r_seq = 5; r_op = Some op; r_inserts = true; r_cs = cs;
      r_extras = Some { Record.partition_counts = [ 3; 0; 4 ];
                        boundary_fks = [ "parent_person" ] } }
  in
  let s = Record.encode r in
  let d = Record.decode s in
  Alcotest.(check string) "decode is a re-encoding fixed point" s (Record.encode d);
  Alcotest.(check int) "seq" 5 d.Record.r_seq;
  Alcotest.(check bool) "inserts flag" true d.Record.r_inserts;
  (match d.Record.r_extras with
   | Some e ->
     Alcotest.(check (list int)) "partition counts" [ 3; 0; 4 ] e.Record.partition_counts;
     Alcotest.(check (list string)) "boundary fks" [ "parent_person" ] e.Record.boundary_fks
   | None -> Alcotest.fail "extras lost");
  Alcotest.(check bool) "op survives" true (d.Record.r_op <> None);
  (* truncated payloads are typed corruption, not stray exceptions *)
  match Record.decode (String.sub s 0 (String.length s / 2)) with
  | _ -> Alcotest.fail "truncated record must be rejected"
  | exception Record.Corrupt _ -> ()

let test_meta_round_trip () =
  let u = small () in
  let meta = Server.store_meta u in
  let s = Record.encode_meta meta in
  let d = Record.decode_meta s in
  Alcotest.(check string) "decode is a re-encoding fixed point" s
    (Record.encode_meta d);
  Alcotest.(check bool) "shadow present" true (d.Record.m_shadow <> None);
  match Record.decode_meta (String.sub s 0 (String.length s - 7)) with
  | _ -> Alcotest.fail "truncated meta must be rejected"
  | exception Record.Corrupt _ -> ()

(* ------------------------------------------------------------------ *)
(* Unit: store lifecycle                                               *)
(* ------------------------------------------------------------------ *)

let test_store_init_append_recover () =
  with_dir @@ fun dir ->
  let u = small () in
  let w =
    Wstore.init ~durability:Wstore.Fsync ~dir ~db:(Update.db u)
      ~meta:(Server.store_meta u) ()
  in
  Alcotest.(check bool) "exists after init" true (Wstore.exists ~dir);
  ignore (logged_exec u w (small_op_insert u));
  ignore (logged_exec u w (small_op_text u));
  Alcotest.(check int) "two records appended" 3 (Wstore.next_seq w);
  Wstore.close w;
  match Wstore.recover ~dir () with
  | Error e -> Alcotest.failf "recover: %s" e
  | Ok r ->
    Alcotest.(check int) "replayed both records" 2 r.Wstore.recovery.Wstore.replayed;
    Alcotest.(check int) "no torn tail" 0 r.Wstore.recovery.Wstore.truncated_bytes;
    Alcotest.(check bool) "not a clean start" false r.Wstore.recovery.Wstore.clean;
    (match Wstore.rebuild_full ~db:r.Wstore.db ~meta:r.Wstore.meta r.Wstore.records with
     | Error e -> Alcotest.failf "rebuild: %s" e
     | Ok u' ->
       Alcotest.(check (list int)) "recovered store answers like the live one"
         (run_q u "//person") (run_q u' "//person");
       Alcotest.(check (list int)) "replayed text visible"
         (run_q u {|//person[address/city='reykjavik']|})
         (run_q u' {|//person[address/city='reykjavik']|}));
    Alcotest.(check int) "sequence numbering resumes" 3 (Wstore.next_seq r.Wstore.store);
    Wstore.close r.Wstore.store

let test_clean_shutdown_skips_scan () =
  with_dir @@ fun dir ->
  let u = small () in
  let w =
    Wstore.init ~durability:Wstore.Fsync ~dir ~db:(Update.db u)
      ~meta:(Server.store_meta u) ()
  in
  ignore (logged_exec u w (small_op_insert u));
  ignore (logged_exec u w (small_op_text u));
  Wstore.close_clean w ~db:(Update.db u) ~meta:(Server.store_meta u);
  (match Wstore.recover ~dir () with
   | Error e -> Alcotest.failf "recover after clean close: %s" e
   | Ok r ->
     Alcotest.(check bool) "clean marker honored" true r.Wstore.recovery.Wstore.clean;
     Alcotest.(check int) "nothing to replay" 0 r.Wstore.recovery.Wstore.replayed;
     Alcotest.(check int) "no records" 0 (List.length r.Wstore.records);
     (match Wstore.rebuild_full ~db:r.Wstore.db ~meta:r.Wstore.meta r.Wstore.records with
      | Error e -> Alcotest.failf "rebuild: %s" e
      | Ok u' ->
        Alcotest.(check (list int)) "final checkpoint captured everything"
          (run_q u "//person") (run_q u' "//person");
        (* the reopened store accepts appends and the clean marker is
           gone: the NEXT recovery scans again *)
        ignore (logged_exec u' r.Wstore.store
                  (Update.Set_text { target = the_one u' "city"; text = "lima" }));
        Wstore.close r.Wstore.store));
  match Wstore.recover ~dir () with
  | Error e -> Alcotest.failf "second recover: %s" e
  | Ok r2 ->
    Alcotest.(check bool) "no longer clean after appends" false
      r2.Wstore.recovery.Wstore.clean;
    Alcotest.(check int) "the post-clean append replays" 1
      r2.Wstore.recovery.Wstore.replayed;
    Wstore.close r2.Wstore.store

let test_torn_tail_recovery () =
  with_dir @@ fun dir ->
  let u = small () in
  let w =
    Wstore.init ~durability:Wstore.Fsync ~dir ~db:(Update.db u)
      ~meta:(Server.store_meta u) ()
  in
  ignore (logged_exec u w (small_op_insert u));
  ignore (logged_exec u w (small_op_text u));
  Wstore.close w;
  let gen =
    match Manifest.read ~dir with
    | Ok m -> m.Manifest.gen
    | Error e -> Alcotest.failf "manifest: %s" e
  in
  let seg = Filename.concat dir (Printf.sprintf "wal-%d.log" gen) in
  let bytes = read_file seg in
  (* tear the second record's frame mid-payload *)
  write_file seg (String.sub bytes 0 (String.length bytes - 4));
  (match Wstore.recover ~dir () with
   | Error e -> Alcotest.failf "recover from torn tail: %s" e
   | Ok r ->
     Alcotest.(check int) "only the whole record replays" 1
       r.Wstore.recovery.Wstore.replayed;
     Alcotest.(check bool) "truncation reported" true
       (r.Wstore.recovery.Wstore.truncated_bytes > 0);
     Alcotest.(check int) "torn record's seq is reusable" 2
       (Wstore.next_seq r.Wstore.store);
     Wstore.close r.Wstore.store);
  (* garbage appended past the valid tail is cut the same way *)
  let bytes = read_file seg in
  write_file seg (bytes ^ "\x99\x99garbage tail");
  match Wstore.recover ~dir () with
  | Error e -> Alcotest.failf "recover from garbage tail: %s" e
  | Ok r ->
    Alcotest.(check bool) "garbage reported as truncation" true
      (r.Wstore.recovery.Wstore.truncated_bytes > 0);
    Wstore.close r.Wstore.store

let test_checkpoint_rotation () =
  with_dir @@ fun dir ->
  let u = small () in
  let w =
    Wstore.init ~durability:Wstore.Fsync ~checkpoint_records:2 ~dir
      ~db:(Update.db u) ~meta:(Server.store_meta u) ()
  in
  ignore (logged_exec u w (small_op_text u));
  Alcotest.(check bool) "one record does not earn a rotation" false
    (Wstore.should_checkpoint w);
  ignore (logged_exec u w (small_op_insert u));
  Alcotest.(check bool) "two records do" true (Wstore.should_checkpoint w);
  Wstore.checkpoint w ~db:(Update.db u) ~meta:(Server.store_meta u);
  (match Manifest.read ~dir with
   | Ok m ->
     Alcotest.(check int) "generation advanced" 1 m.Manifest.gen;
     Alcotest.(check int) "checkpoint covers both commits" 2 m.Manifest.base_seq
   | Error e -> Alcotest.failf "manifest: %s" e);
  Alcotest.(check bool) "superseded snapshot dropped" false
    (Sys.file_exists (Filename.concat dir "checkpoint-0.db"));
  Alcotest.(check bool) "superseded segment dropped" false
    (Sys.file_exists (Filename.concat dir "wal-0.log"));
  ignore
    (logged_exec u w
       (Update.Set_text { target = the_one u "city"; text = "after-rotation" }));
  Wstore.close w;
  match Wstore.recover ~dir () with
  | Error e -> Alcotest.failf "recover: %s" e
  | Ok r ->
    Alcotest.(check int) "only the post-rotation record replays" 1
      r.Wstore.recovery.Wstore.replayed;
    (match Wstore.rebuild_full ~db:r.Wstore.db ~meta:r.Wstore.meta r.Wstore.records with
     | Error e -> Alcotest.failf "rebuild: %s" e
     | Ok u' ->
       Alcotest.(check (list int)) "state identical through the rotation"
         (run_q u {|//person[address/city='after-rotation']|})
         (run_q u' {|//person[address/city='after-rotation']|}));
    Wstore.close r.Wstore.store

let test_recovery_metrics () =
  with_dir @@ fun dir ->
  let u = small () in
  let w =
    Wstore.init ~durability:Wstore.Fsync ~dir ~db:(Update.db u)
      ~meta:(Server.store_meta u) ()
  in
  let m = Metrics.create () in
  Wstore.set_metrics w m;
  ignore (logged_exec u w (small_op_insert u));
  Alcotest.(check int) "append counted" 1 (Metrics.wal_appends m);
  Alcotest.(check bool) "append bytes counted" true (Metrics.wal_bytes m > 0);
  Alcotest.(check bool) "fsync counted" true (Metrics.wal_fsyncs m >= 1);
  Wstore.close_clean w ~db:(Update.db u) ~meta:(Server.store_meta u);
  Alcotest.(check int) "clean shutdown counted" 1 (Metrics.clean_shutdowns m);
  Alcotest.(check bool) "final checkpoint counted" true (Metrics.checkpoints m >= 1);
  match Wstore.recover ~dir () with
  | Error e -> Alcotest.failf "recover: %s" e
  | Ok r ->
    (* counters observed before the sink attaches are pushed at once *)
    let m2 = Metrics.create () in
    Wstore.set_metrics r.Wstore.store m2;
    Alcotest.(check int) "clean start counted" 1 (Metrics.clean_starts m2);
    Alcotest.(check int) "not counted as a replay recovery" 0 (Metrics.recoveries m2);
    Wstore.close r.Wstore.store

let test_durability_of_string () =
  let check s expect =
    match Wstore.durability_of_string s, expect with
    | Ok a, Some b ->
      Alcotest.(check string) s
        (Wstore.durability_to_string b) (Wstore.durability_to_string a)
    | Error _, None -> ()
    | Ok a, None ->
      Alcotest.failf "%s: expected rejection, got %s" s (Wstore.durability_to_string a)
    | Error e, Some _ -> Alcotest.failf "%s: unexpected rejection: %s" s e
  in
  check "off" (Some Wstore.Off);
  check "fsync" (Some Wstore.Fsync);
  check "batch" (Some (Wstore.Batch 32));
  check "batch:8" (Some (Wstore.Batch 8));
  check "batch:0" None;
  check "bogus" None

(* ------------------------------------------------------------------ *)
(* The crash-recovery differential                                     *)
(* ------------------------------------------------------------------ *)

(* The mutation-step machinery, as in test_update: interpret integer
   triples against the current store state so the same step list replays
   identically on any store that went through the same prefix. *)

let fragment_pool tree =
  let rec go ptag n acc =
    match n with
    | Tree.Text _ -> acc
    | Tree.Element { tag; children; _ } as e ->
      let acc = match ptag with Some pt -> (pt, e) :: acc | None -> acc in
      List.fold_left (fun acc c -> go (Some tag) c acc) acc children
  in
  Array.of_list (go None tree [])

let live_ids u =
  List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) (Update.ranks u) [])

let apply_step ~pool ~u ~exec (a, b, c) =
  let try_exec op = try ignore (exec op) with Update.Update_error _ -> () in
  let ids = live_ids u in
  let nth l i = List.nth l (i mod List.length l) in
  match a mod 6 with
  | 0 | 1 ->
    let ptag, fragment = pool.(b mod Array.length pool) in
    let parents =
      List.filter (fun id -> String.equal (Update.node_tag u id) ptag) ids
    in
    (match parents with
     | [] -> ()
     | ps ->
       let parent = nth ps c in
       let kids = Update.node_children u parent in
       let before = if kids = [] || c mod 2 = 0 then None else Some (nth kids b) in
       try_exec (Update.Insert_subtree { parent; before; fragment }))
  | 2 -> try_exec (Update.Delete_subtree { target = nth ids b })
  | 3 ->
    let ptag, fragment = pool.(b mod Array.length pool) in
    let targets =
      List.filter
        (fun id ->
          match Update.node_parent u id with
          | Some p -> String.equal (Update.node_tag u p) ptag
          | None -> false)
        ids
    in
    (match targets with
     | [] -> ()
     | ts -> try_exec (Update.Replace_subtree { target = nth ts c; fragment }))
  | 4 ->
    try_exec (Update.Set_text { target = nth ids b; text = Printf.sprintf "t%d" c })
  | _ ->
    let items = List.filter (fun id -> Update.node_tag u id = "item") ids in
    (match items with
     | [] -> ()
     | its ->
       try_exec
         (Update.Set_attribute
            { target = nth its b; name = "id";
              value = if c mod 3 = 0 then None else Some (Printf.sprintf "wal-x%d" c) }))

let steps_arb lo hi =
  QCheck.make
    ~print:(fun steps ->
      String.concat ";"
        (List.map (fun (a, b, c) -> Printf.sprintf "%d,%d,%d" a b c) steps))
    QCheck.Gen.(
      list_size (int_range lo hi)
        (triple (int_bound 10000) (int_bound 10000) (int_bound 10000)))

let check_store_partitions label (st : Loader.t) =
  List.iter
    (fun t ->
      match Table.partition_spec t with
      | None -> ()
      | Some _ -> (
        match Table.check_partitions t with
        | Ok () -> ()
        | Error e ->
          QCheck.Test.fail_reportf "%s: %s violates partition invariant: %s" label
            (Table.name t) e))
    (Database.tables st.Loader.db)

(* One fault per crash point, cycling through the three kinds so the
   sweep exercises clean drops, torn frames and flipped bits. *)
let fault_for k =
  match k mod 3 with
  | 1 -> Some (Io.Short_write (k mod 7))
  | 2 -> Some (Io.Flip_bit k)
  | _ -> None

(* --- single store ------------------------------------------------- *)

let xsingle =
  lazy
    (let tree = Xmark.generate ~seed:5 ~items_per_region:1 () in
     let schema = Graph.infer (Doc.of_tree tree) in
     (tree, schema, fragment_pool tree))

(* Run the workload durably; [arm = Some (k, fault)] injects the crash
   after init. Returns the store handle (for [dispose]), the op count
   right after init, the number of acked commits, and whether the
   injected crash fired. *)
let run_durable ~io ~arm ~dir steps =
  let tree, schema, pool = Lazy.force xsingle in
  let u = Update.create schema [ tree ] in
  let w =
    Wstore.init ~io ~durability:Wstore.Fsync ~checkpoint_records:3 ~dir
      ~db:(Update.db u) ~meta:(Server.store_meta u) ()
  in
  let ops0 = Io.ops io in
  (match arm with
   | Some (k, fault) -> Io.arm io ?fault ~crash_at:k ()
   | None -> ());
  let acked = ref 0 in
  let crashed =
    try
      List.iter
        (apply_step ~pool ~u ~exec:(fun op ->
             let cs = Update.stage u op in
             ignore (Wstore.append w ~op cs : int);
             Update.commit (Update.db u) cs;
             incr acked;
             if Wstore.should_checkpoint w then
               Wstore.checkpoint w ~db:(Update.db u) ~meta:(Server.store_meta u);
             Update.outcome_of cs))
        steps;
      false
    with Io.Crashed _ -> true
  in
  (w, ops0, !acked, crashed)

(* A never-crashed reference holding exactly the first [m] commits. *)
let reference_prefix steps m =
  let _, schema, pool = Lazy.force xsingle in
  let tree, _, _ = Lazy.force xsingle in
  let u = Update.create schema [ tree ] in
  let applied = ref 0 in
  (try
     List.iter
       (apply_step ~pool ~u ~exec:(fun op ->
            if !applied >= m then raise Stdlib.Exit;
            let o = Update.exec u op in
            incr applied;
            o))
       steps
   with Stdlib.Exit -> ());
  (u, !applied)

let check_single_recovery ~dir ~acked steps =
  match Wstore.recover ~dir () with
  | Error e -> QCheck.Test.fail_reportf "recover: %s" e
  | Ok r ->
    let m = Wstore.next_seq r.Wstore.store - 1 in
    if m < acked then
      QCheck.Test.fail_reportf "lost acked commits: %d persisted < %d acked" m acked;
    let u' =
      match Wstore.rebuild_full ~db:r.Wstore.db ~meta:r.Wstore.meta r.Wstore.records with
      | Ok u -> u
      | Error e -> QCheck.Test.fail_reportf "rebuild_full: %s" e
    in
    Wstore.close r.Wstore.store;
    let u_ref, applied = reference_prefix steps m in
    if applied <> m then
      QCheck.Test.fail_reportf "reference applied %d of %d persisted commits" applied m;
    (* recovered stores keep original ids and labels: compare raw, no
       rank normalization *)
    let ids' = live_ids u' and ids_ref = live_ids u_ref in
    if ids' <> ids_ref then
      QCheck.Test.fail_reportf "live id sets differ: %d vs %d" (List.length ids')
        (List.length ids_ref);
    List.iter
      (fun id ->
        if not (String.equal (Update.node_label u' id) (Update.node_label u_ref id))
        then QCheck.Test.fail_reportf "label of %d rewritten by recovery" id)
      ids_ref;
    check_store_partitions "recovered store" (Update.store u');
    let s' = Session.create (Update.store u') in
    let s_ref = Session.create (Update.store u_ref) in
    List.iter
      (fun (name, q) ->
        if Session.run_ids s' q <> Session.run_ids s_ref q then
          QCheck.Test.fail_reportf "%s: recovered result differs from the acked prefix"
            name)
      Xmark.queries

let prop_crash_recovery_single =
  QCheck.Test.make ~count:2
    ~name:"recovery ≡ acked prefix at every crash point (single store)"
    (steps_arb 4 6)
    (fun steps ->
      with_dir @@ fun dir ->
      (* counting pass: no crash, learn the op budget *)
      let io0 = Io.create () in
      let w0, ops0, _, crashed = run_durable ~io:io0 ~arm:None ~dir steps in
      if crashed then QCheck.Test.fail_report "disarmed run crashed";
      Wstore.close w0;
      let total = Io.ops io0 in
      if total <= ops0 then QCheck.Test.fail_report "workload performed no durable ops";
      for k = ops0 to total - 1 do
        rm_rf dir;
        let io = Io.create () in
        let w, _, acked, crashed =
          run_durable ~io ~arm:(Some (k, fault_for k)) ~dir steps
        in
        if not crashed then QCheck.Test.fail_reportf "crash point %d did not fire" k;
        Wstore.dispose w;
        Io.disarm io;
        check_single_recovery ~dir ~acked steps
      done;
      true)

(* --- 4-shard cluster ---------------------------------------------- *)

let xcluster =
  lazy
    (let tree = Xmark.generate ~seed:7 ~items_per_region:1 () in
     let schema = Graph.infer (Doc.of_tree tree) in
     (tree, schema, fragment_pool tree))

let run_cluster_durable ~io ~arm ~data_dir steps =
  let tree, schema, pool = Lazy.force xcluster in
  let c = Cluster.create ~pool_size:0 ~shards:4 schema [ tree ] in
  (* rotation crash points are swept on the single store; a high record
     threshold keeps this sweep focused on the fan-out append path *)
  Cluster.make_durable ~io ~durability:Wstore.Fsync ~checkpoint_records:1000
    ~data_dir c;
  let ops0 = Io.ops io in
  (match arm with
   | Some (k, fault) -> Io.arm io ?fault ~crash_at:k ()
   | None -> ());
  let u = Cluster.full_update c in
  let acked = ref 0 in
  let crashed =
    try
      List.iter
        (apply_step ~pool ~u ~exec:(fun op ->
             let o = Cluster.update c op in
             incr acked;
             o))
        steps;
      false
    with Io.Crashed _ -> true
  in
  (c, ops0, !acked, crashed)

let check_cluster_recovery ~data_dir ~acked steps =
  match Cluster.open_durable ~pool_size:0 ~data_dir () with
  | Error e -> QCheck.Test.fail_reportf "open_durable: %s" e
  | Ok c' ->
    Fun.protect
      ~finally:(fun () ->
        Cluster.dispose_wal c';
        Cluster.close c')
      (fun () ->
        let m =
          match Cluster.wal_next_seq c' with
          | Some n -> n - 1
          | None -> QCheck.Test.fail_report "recovered cluster is not durable"
        in
        if m < acked then
          QCheck.Test.fail_reportf "lost acked commits: %d persisted < %d acked" m
            acked;
        let tree, schema, pool = Lazy.force xcluster in
        Cluster.with_cluster ~pool_size:0 ~shards:4 schema [ tree ] (fun cref ->
            let uref = Cluster.full_update cref in
            let applied = ref 0 in
            (try
               List.iter
                 (apply_step ~pool ~u:uref ~exec:(fun op ->
                      if !applied >= m then raise Stdlib.Exit;
                      let o = Cluster.update cref op in
                      incr applied;
                      o))
                 steps
             with Stdlib.Exit -> ());
            if !applied <> m then
              QCheck.Test.fail_reportf "reference applied %d of %d persisted commits"
                !applied m;
            Array.iteri
              (fun i st ->
                check_store_partitions (Printf.sprintf "recovered shard %d" i) st)
              (Cluster.shard_stores c');
            if
              Array.to_list (Cluster.partition_counts c')
              <> Array.to_list (Cluster.partition_counts cref)
            then
              QCheck.Test.fail_report
                "recovered partition counts differ from the reference";
            List.iter
              (fun (name, q) ->
                if Cluster.run_ids c' q <> Cluster.run_ids cref q then
                  QCheck.Test.fail_reportf
                    "%s: recovered scatter-gather differs from the acked prefix" name)
              Xmark.queries))

let prop_crash_recovery_cluster =
  QCheck.Test.make ~count:1
    ~name:"recovery ≡ acked prefix at every crash point (4-shard cluster)"
    (steps_arb 3 4)
    (fun steps ->
      with_dir @@ fun data_dir ->
      let io0 = Io.create () in
      let c0, ops0, _, crashed = run_cluster_durable ~io:io0 ~arm:None ~data_dir steps in
      if crashed then QCheck.Test.fail_report "disarmed run crashed";
      Cluster.dispose_wal c0;
      Cluster.close c0;
      let total = Io.ops io0 in
      if total <= ops0 then QCheck.Test.fail_report "workload performed no durable ops";
      for k = ops0 to total - 1 do
        rm_rf data_dir;
        let io = Io.create () in
        let c, _, acked, crashed =
          run_cluster_durable ~io ~arm:(Some (k, fault_for k)) ~data_dir steps
        in
        if not crashed then QCheck.Test.fail_reportf "crash point %d did not fire" k;
        Cluster.dispose_wal c;
        Cluster.close c;
        Io.disarm io;
        check_cluster_recovery ~data_dir ~acked steps
      done;
      true)

(* Cold start: a cleanly closed durable cluster reopens from disk and
   answers the workload queries identically to a fresh re-shred of the
   mutated documents. *)
let test_cluster_cold_start () =
  with_dir @@ fun data_dir ->
  let tree, schema, pool = Lazy.force xcluster in
  let steps = [ (0, 3, 1); (4, 2, 9); (2, 5, 0); (1, 7, 3) ] in
  let c = Cluster.create ~pool_size:0 ~shards:4 schema [ tree ] in
  Cluster.make_durable ~durability:Wstore.Fsync ~data_dir c;
  let u = Cluster.full_update c in
  List.iter (apply_step ~pool ~u ~exec:(Cluster.update c)) steps;
  let reshred_trees = Update.current_trees u in
  let want = List.map (fun (_, q) -> Cluster.run_ids c q) Xmark.queries in
  Cluster.close c;
  (* clean shutdown: both the full store and every shard skip the scan *)
  (match Manifest.read ~dir:(Filename.concat data_dir "full") with
   | Ok m -> Alcotest.(check bool) "full store closed clean" true m.Manifest.clean
   | Error e -> Alcotest.failf "full manifest: %s" e);
  (match Cluster.open_durable ~pool_size:0 ~data_dir () with
   | Error e -> Alcotest.failf "cold start: %s" e
   | Ok c' ->
     Fun.protect
       ~finally:(fun () -> Cluster.close c')
       (fun () ->
         Alcotest.(check int) "shard count from extras" 4 (Cluster.shards c');
         List.iter2
           (fun (name, q) expect ->
             Alcotest.(check (list int)) (name ^ " identical after cold start")
               expect (Cluster.run_ids c' q))
           Xmark.queries want;
         (* and identical to a fresh re-shred of the mutated documents,
            rank-normalized (a re-shred renumbers ids) *)
         let fresh = Update.create schema reshred_trees in
         let s_ref = Session.create (Update.store fresh) in
         let rk_inc = Update.ranks (Cluster.full_update c') in
         let rk_ref = Update.ranks fresh in
         let rank_set rk ids = List.sort compare (List.map (Hashtbl.find rk) ids) in
         List.iter
           (fun (name, q) ->
             Alcotest.(check (list int)) (name ^ " equals a fresh re-shred")
               (rank_set rk_ref (Session.run_ids s_ref q))
               (rank_set rk_inc (Cluster.run_ids c' q)))
           Xmark.queries;
         (* the reopened cluster keeps accepting logged mutations *)
         let u' = Cluster.full_update c' in
         ignore
           (Cluster.update c'
              (Update.Set_text
                 { target = List.hd (find_by_tag u' "city"); text = "cold" }))))

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "wal"
    [
      ( "framing",
        List.map tc
          [
            "crc32 known vectors", test_crc32_vectors;
            "segment scan", test_log_scan;
            "torn tail cut", test_log_torn_tail;
            "bit flip cut", test_log_bit_flip;
            "bad magic", test_log_bad_magic;
          ] );
      ( "manifest",
        List.map tc
          [
            "round trip", test_manifest_round_trip;
            "atomic at every crash point", test_manifest_atomic_replace;
          ] );
      ( "records",
        List.map tc
          [
            "record round trip", test_record_round_trip;
            "checkpoint sidecar round trip", test_meta_round_trip;
          ] );
      ( "store",
        List.map tc
          [
            "init + append + recover", test_store_init_append_recover;
            "clean shutdown skips the scan", test_clean_shutdown_skips_scan;
            "torn and garbage tails truncate", test_torn_tail_recovery;
            "checkpoint rotation", test_checkpoint_rotation;
            "durability counters", test_recovery_metrics;
            "durability_of_string", test_durability_of_string;
          ] );
      ( "crash differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_crash_recovery_single; prop_crash_recovery_cluster ] );
      ("cold start", List.map tc [ "cluster cold start", test_cluster_cold_start ]);
    ]

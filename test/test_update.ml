(* Tests for the write path (lib/update): typed subtree mutations over a
   shredded store with ORDPATH caret labels, incremental Paths
   maintenance, fine-grained plan invalidation, and the cluster/wire
   integrations.

   The load-bearing properties:
   - a random mutation sequence applied incrementally produces exactly
     the query results of re-shredding the mutated documents from
     scratch (rank-normalized: incremental stores keep original element
     ids, a re-shred renumbers) — on a single store AND across a
     4-shard cluster;
   - no insert ever rewrites an existing stored label (ORDPATH's core
     guarantee), and every element's children stay strictly
     label-ordered;
   - a prepared plan whose footprint is disjoint from a commit executes
     with ZERO re-plans (the plans-retained metric), while an
     overlapping commit still invalidates. *)

module Tree = Ppfx_xml.Tree
module Doc = Ppfx_xml.Doc
module Xmlparser = Ppfx_xml.Parser
module Graph = Ppfx_schema.Graph
module Database = Ppfx_minidb.Database
module Table = Ppfx_minidb.Table
module Loader = Ppfx_shred.Loader
module Update = Ppfx_update.Update
module Session = Ppfx_service.Session
module Metrics = Ppfx_service.Metrics
module Cluster = Ppfx_cluster.Cluster
module Xmark = Ppfx_workloads.Xmark
module Server = Ppfx_net.Server
module Client = Ppfx_client.Client

(* ------------------------------------------------------------------ *)
(* A small fixed document for the unit tests                           *)
(* ------------------------------------------------------------------ *)

let small_xml =
  {|<site>
  <people>
    <person id="p1"><name>ann</name><address><city>oslo</city></address></person>
    <person id="p2"><name>bob</name></person>
    <person id="p3"><name>cyd</name></person>
  </people>
  <items>
    <item id="i1"><name>gold ring</name></item>
  </items>
</site>|}

let small () =
  let tree = Xmlparser.parse small_xml in
  let schema = Graph.infer (Doc.of_tree tree) in
  Update.create schema [ tree ], schema

let find_by_tag u tag =
  let ids =
    Hashtbl.fold
      (fun id _ acc -> if String.equal (Update.node_tag u id) tag then id :: acc else acc)
      (Update.ranks u) []
  in
  List.sort compare ids

let the_one u tag =
  match find_by_tag u tag with
  | [ id ] -> id
  | ids -> Alcotest.failf "expected one <%s>, found %d" tag (List.length ids)

let run_q u q = Session.run_ids (Session.create (Update.store u)) q

let frag = Xmlparser.parse

(* ------------------------------------------------------------------ *)
(* Unit: the five operations                                           *)
(* ------------------------------------------------------------------ *)

let test_insert_append () =
  let u, _ = small () in
  let people = the_one u "people" in
  let o =
    Update.exec u
      (Update.Insert_subtree
         { parent = people; before = None;
           fragment = frag {|<person id="p4"><name>dee</name></person>|} })
  in
  Alcotest.(check int) "two rows inserted" 2 o.Update.inserted;
  Alcotest.(check int) "no new paths" 0 o.Update.new_paths;
  Alcotest.(check int) "four persons" 4 (List.length (run_q u "//person"));
  Alcotest.(check (list int)) "predicate finds the new person"
    [ List.nth (find_by_tag u "person") 3 ]
    (run_q u {|//person[@id='p4']|});
  (* appended: its rank is the highest among persons *)
  let ranks = Update.ranks u in
  let person_ranks = List.map (Hashtbl.find ranks) (find_by_tag u "person") in
  let new_rank = Hashtbl.find ranks (List.nth (find_by_tag u "person") 3) in
  Alcotest.(check int) "last in document order among persons" new_rank
    (List.fold_left max 0 person_ranks)

let test_insert_before () =
  let u, _ = small () in
  let people = the_one u "people" in
  let first = List.hd (Update.node_children u people) in
  ignore
    (Update.exec u
       (Update.Insert_subtree
          { parent = people; before = Some first;
            fragment = frag {|<person id="p0"><name>zed</name></person>|} }));
  let persons = find_by_tag u "person" in
  let newcomer = List.nth persons 3 (* highest id = freshly allocated *) in
  let ranks = Update.ranks u in
  Alcotest.(check bool) "inserted before the old first person" true
    (Hashtbl.find ranks newcomer < Hashtbl.find ranks first);
  (* the shadow agrees with the relational image *)
  Alcotest.(check int) "four persons" 4 (List.length (run_q u "//person"))

let test_delete () =
  let u, _ = small () in
  let city = the_one u "city" in
  let p1 = List.hd (find_by_tag u "person") in
  let o = Update.exec u (Update.Delete_subtree { target = p1 }) in
  Alcotest.(check int) "person+name+address+city rows deleted" 4 o.Update.deleted;
  Alcotest.(check int) "city and address paths died" 2 o.Update.dead_paths;
  Alcotest.(check bool) "city gone from the shadow" false (Update.node_exists u city);
  Alcotest.(check (list int)) "no cities left" [] (run_q u "//city");
  Alcotest.(check int) "two persons left" 2 (List.length (run_q u "//person"))

let test_delete_root_rejected () =
  let u, _ = small () in
  let site = the_one u "site" in
  match Update.exec u (Update.Delete_subtree { target = site }) with
  | _ -> Alcotest.fail "deleting the document root must be rejected"
  | exception Update.Update_error _ -> ()

let test_replace () =
  let u, _ = small () in
  let persons = find_by_tag u "person" in
  let p2 = List.nth persons 1 in
  let o =
    Update.exec u
      (Update.Replace_subtree
         { target = p2;
           fragment = frag {|<person id="bobby"><name>bobby</name></person>|} })
  in
  Alcotest.(check bool) "rows deleted and inserted" true
    (o.Update.deleted > 0 && o.Update.inserted = 2);
  Alcotest.(check int) "still three persons" 3 (List.length (run_q u "//person"));
  let replacement = List.nth (find_by_tag u "person") 2 in
  let ranks = Update.ranks u in
  let rank id = Hashtbl.find ranks id in
  (* position preserved: strictly between the two surviving neighbors *)
  Alcotest.(check bool) "keeps the replaced element's position" true
    (rank (List.nth persons 0) < rank replacement
     && rank replacement < rank (List.nth persons 2));
  Alcotest.(check (list int)) "new attribute visible" [ replacement ]
    (run_q u {|//person[@id='bobby']|})

let test_set_text () =
  let u, _ = small () in
  let city = the_one u "city" in
  let p1 = List.hd (find_by_tag u "person") in
  ignore (Update.exec u (Update.Set_text { target = city; text = "paris" }));
  Alcotest.(check (list int)) "predicate sees the new text" [ p1 ]
    (run_q u {|//person[address/city='paris']|});
  Alcotest.(check (list int)) "old text gone" []
    (run_q u {|//person[address/city='oslo']|})

let test_set_attribute () =
  let u, _ = small () in
  let persons = find_by_tag u "person" in
  let p2 = List.nth persons 1 in
  ignore
    (Update.exec u (Update.Set_attribute { target = p2; name = "id"; value = Some "zz" }));
  Alcotest.(check (list int)) "new value matches" [ p2 ] (run_q u {|//person[@id='zz']|});
  Alcotest.(check (list int)) "old value gone" [] (run_q u {|//person[@id='p2']|});
  ignore (Update.exec u (Update.Set_attribute { target = p2; name = "id"; value = None }));
  Alcotest.(check (list int)) "attribute removed" [] (run_q u {|//person[@id='zz']|})

let test_invalid_ops_rejected () =
  let u, _ = small () in
  let people = the_one u "people" in
  let expect_error what f =
    match f () with
    | (_ : Update.outcome) -> Alcotest.failf "%s must be rejected" what
    | exception Update.Update_error _ -> ()
  in
  expect_error "unknown parent" (fun () ->
      Update.exec u
        (Update.Insert_subtree { parent = 99999; before = None; fragment = frag "<person/>" }));
  expect_error "non-conforming fragment" (fun () ->
      Update.exec u
        (Update.Insert_subtree { parent = people; before = None; fragment = frag "<bogus/>" }));
  expect_error "undeclared attribute" (fun () ->
      Update.exec u
        (Update.Set_attribute
           { target = List.hd (find_by_tag u "person"); name = "nope"; value = Some "x" }));
  (* a failed stage leaves the store untouched *)
  Alcotest.(check int) "store unchanged after rejections" 3
    (List.length (run_q u "//person"))

let test_new_path_interned () =
  let u, _ = small () in
  let persons = find_by_tag u "person" in
  let p2 = List.nth persons 1 (* bob: has no address yet *) in
  let o =
    Update.exec u
      (Update.Insert_subtree
         { parent = p2; before = None;
           fragment = frag "<address><city>lima</city></address>" })
  in
  Alcotest.(check int) "address and city paths already interned" 0 o.Update.new_paths;
  Alcotest.(check int) "two cities now" 2 (List.length (run_q u "//city"))

(* ------------------------------------------------------------------ *)
(* Unit: fine-grained plan retention (the acceptance criterion)        *)
(* ------------------------------------------------------------------ *)

let test_plan_retained_on_disjoint_commit () =
  let tree = Xmark.generate ~seed:11 ~items_per_region:1 () in
  let schema = Graph.infer (Doc.of_tree tree) in
  let u = Update.create schema [ tree ] in
  let session = Session.create (Update.store u) in
  let m = Session.metrics session in
  let p = Session.prepare session "//keyword" in
  let before = Session.execute_ids session p in
  Alcotest.(check bool) "query matches something" true (before <> []);
  (* A commit that touches only the people subtree: city text + every
     ancestor's string-value column. Disjoint from the //keyword plan's
     footprint (keyword relation + its pathids). *)
  let city = List.hd (find_by_tag u "city") in
  ignore (Update.exec u (Update.Set_text { target = city; text = "nowhere" }));
  let ret0 = Metrics.retained m and inv0 = Metrics.invalidations m in
  let after = Session.execute_ids session p in
  Alcotest.(check (list int)) "identical result through the retained plan" before after;
  Alcotest.(check int) "plan retained, not re-planned" (ret0 + 1) (Metrics.retained m);
  Alcotest.(check int) "zero invalidations" inv0 (Metrics.invalidations m);
  (* An overlapping commit — inserting a keyword — must invalidate. *)
  let text_el = List.hd (find_by_tag u "text") in
  ignore
    (Update.exec u
       (Update.Insert_subtree
          { parent = text_el; before = None; fragment = frag "<keyword>zzz</keyword>" }));
  let inv1 = Metrics.invalidations m in
  let grown = Session.execute_ids session p in
  Alcotest.(check int) "keyword insert invalidates the plan" (inv1 + 1)
    (Metrics.invalidations m);
  Alcotest.(check int) "and the re-planned query sees the new keyword"
    (List.length before + 1) (List.length grown)

(* The commit log is bounded ([Database.log_capacity] entries, oldest
   dropped): a plan prepared before the log's horizon can no longer
   prove its footprint disjoint, so it must conservatively re-plan —
   and still answer correctly. *)
let test_plan_older_than_log_conservatively_invalidates () =
  let tree = Xmark.generate ~seed:11 ~items_per_region:1 () in
  let schema = Graph.infer (Doc.of_tree tree) in
  let u = Update.create schema [ tree ] in
  let session = Session.create (Update.store u) in
  let m = Session.metrics session in
  (* the [name] relation is shared by [person/name] and [item/name]: the
     plan's footprint is the item pathids, the flood mutates a person
     name — same table, disjoint pathids, so retention depends on the
     per-table delta walk through the commit log *)
  let p = Session.prepare session "//item[location]/name" in
  let before = Session.execute_ids session p in
  Alcotest.(check bool) "query matches something" true (before <> []);
  let person_name =
    List.find
      (fun id ->
        match Update.node_parent u id with
        | Some par -> String.equal (Update.node_tag u par) "person"
        | None -> false)
      (find_by_tag u "name")
  in
  let flood n =
    for i = 1 to n do
      ignore
        (Update.exec u
           (Update.Set_text { target = person_name; text = Printf.sprintf "c%d" i }))
    done
  in
  (* within the log's horizon the disjoint-pathid proof still works *)
  flood 64;
  let ret0 = Metrics.retained m and inv0 = Metrics.invalidations m in
  Alcotest.(check (list int)) "retained plan answers identically" before
    (Session.execute_ids session p);
  Alcotest.(check int) "64 logged commits: plan retained" (ret0 + 1)
    (Metrics.retained m);
  Alcotest.(check int) "no invalidation inside the horizon" inv0
    (Metrics.invalidations m);
  (* past the bounded log's capacity the delta is unprovable *)
  flood (Database.log_capacity + 8);
  let ret1 = Metrics.retained m and inv1 = Metrics.invalidations m in
  Alcotest.(check (list int)) "re-planned query still answers identically" before
    (Session.execute_ids session p);
  Alcotest.(check int) "plan fell off the log horizon: conservative re-plan"
    (inv1 + 1) (Metrics.invalidations m);
  Alcotest.(check int) "not counted as retained" ret1 (Metrics.retained m);
  (* a plan prepared after the flood retains normally across a fresh
     disjoint commit: the bound only costs staleness, not precision *)
  let p2 = Session.prepare session "//item[location]/name" in
  ignore (Session.execute_ids session p2);
  ignore (Update.exec u (Update.Set_text { target = person_name; text = "last" }));
  let ret2 = Metrics.retained m in
  ignore (Session.execute_ids session p2);
  Alcotest.(check int) "fresh plan retained through a disjoint commit" (ret2 + 1)
    (Metrics.retained m)

let test_whole_epoch_invalidation_when_disabled () =
  let tree = Xmark.generate ~seed:11 ~items_per_region:1 () in
  let schema = Graph.infer (Doc.of_tree tree) in
  let u = Update.create schema [ tree ] in
  let session = Session.create ~fine_grained:false (Update.store u) in
  let m = Session.metrics session in
  let p = Session.prepare session "//keyword" in
  ignore (Session.execute_ids session p);
  let city = List.hd (find_by_tag u "city") in
  ignore (Update.exec u (Update.Set_text { target = city; text = "nowhere" }));
  let inv0 = Metrics.invalidations m in
  ignore (Session.execute_ids session p);
  Alcotest.(check int) "pre-write-path behavior: every commit invalidates"
    (inv0 + 1) (Metrics.invalidations m);
  Alcotest.(check int) "nothing retained" 0 (Metrics.retained m)

(* ------------------------------------------------------------------ *)
(* Random mutation sequences                                           *)
(* ------------------------------------------------------------------ *)

(* The fragment pool: every element of the original tree that has a
   parent, paired with that parent's tag — schema-conforming subtrees to
   clone back in at matching positions. *)
let fragment_pool tree =
  let rec go ptag n acc =
    match n with
    | Tree.Text _ -> acc
    | Tree.Element { tag; children; _ } as e ->
      let acc = match ptag with Some pt -> (pt, e) :: acc | None -> acc in
      List.fold_left (fun acc c -> go (Some tag) c acc) acc children
  in
  Array.of_list (go None tree [])

let live_ids u =
  List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) (Update.ranks u) [])

(* Interpret one step against the current store state. Steps that land
   on an invalid choice (schema mismatch, root delete) are skipped: the
   stage raises before any mutation, so the store stays consistent. *)
let apply_step ~pool ~u ~exec (a, b, c) =
  let try_exec op = try ignore (exec op) with Update.Update_error _ -> () in
  let ids = live_ids u in
  let nth l i = List.nth l (i mod List.length l) in
  match a mod 6 with
  | 0 | 1 ->
    let ptag, fragment = pool.(b mod Array.length pool) in
    let parents =
      List.filter (fun id -> String.equal (Update.node_tag u id) ptag) ids
    in
    (match parents with
     | [] -> ()
     | ps ->
       let parent = nth ps c in
       let kids = Update.node_children u parent in
       let before = if kids = [] || c mod 2 = 0 then None else Some (nth kids b) in
       try_exec (Update.Insert_subtree { parent; before; fragment }))
  | 2 ->
    try_exec (Update.Delete_subtree { target = nth ids b })
  | 3 ->
    let ptag, fragment = pool.(b mod Array.length pool) in
    let targets =
      List.filter
        (fun id ->
          match Update.node_parent u id with
          | Some p -> String.equal (Update.node_tag u p) ptag
          | None -> false)
        ids
    in
    (match targets with
     | [] -> ()
     | ts -> try_exec (Update.Replace_subtree { target = nth ts c; fragment }))
  | 4 ->
    try_exec (Update.Set_text { target = nth ids b; text = Printf.sprintf "t%d" c })
  | _ ->
    (* attribute flips on the tags that declare them *)
    let items = List.filter (fun id -> Update.node_tag u id = "item") ids in
    (match items with
     | [] -> ()
     | its ->
       try_exec
         (Update.Set_attribute
            { target = nth its b; name = "id";
              value = if c mod 3 = 0 then None else Some (Printf.sprintf "item-x%d" c) }))

let steps_arb n =
  QCheck.make
    ~print:(fun steps ->
      String.concat ";"
        (List.map (fun (a, b, c) -> Printf.sprintf "%d,%d,%d" a b c) steps))
    QCheck.Gen.(
      list_size (int_range 4 n)
        (triple (int_bound 10000) (int_bound 10000) (int_bound 10000)))

let rank_set rk ids = List.sort compare (List.map (Hashtbl.find rk) ids)

(* The shredder's fact tables are path-partitioned with Dewey-sorted
   segments and carry content indexes on their text columns; every
   incremental commit must preserve both physical invariants (inserts
   caret into the right slot / post the row's terms, deletes shrink the
   segment / unpost them). Checked after each full mutation sequence. *)
let check_store_partitions label (st : Loader.t) =
  let partitioned = ref 0 and content = ref 0 in
  List.iter
    (fun t ->
      (match Table.partition_spec t with
       | None -> ()
       | Some _ -> (
         incr partitioned;
         match Table.check_partitions t with
         | Ok () -> ()
         | Error e ->
           QCheck.Test.fail_reportf "%s: %s violates partition invariant: %s" label
             (Table.name t) e));
      if Table.content_indexes t <> [] then begin
        incr content;
        match Table.check_content_indexes t with
        | Ok () -> ()
        | Error e ->
          QCheck.Test.fail_reportf "%s: %s violates content index invariant: %s"
            label (Table.name t) e
      end)
    (Database.tables st.Loader.db);
  if !partitioned = 0 then
    QCheck.Test.fail_reportf "%s: expected partitioned fact tables" label;
  if !content = 0 then
    QCheck.Test.fail_reportf "%s: expected content-indexed tables" label

(* Differential: incremental mutations == full re-shred, on one store. *)
let prop_incremental_equals_reshred =
  QCheck.Test.make ~count:8
    ~name:"incremental mutations equal a full re-shred (single store)"
    (steps_arb 10)
    (fun steps ->
      let tree = Xmark.generate ~seed:5 ~items_per_region:1 () in
      let schema = Graph.infer (Doc.of_tree tree) in
      let pool = fragment_pool tree in
      let u = Update.create schema [ tree ] in
      List.iter (apply_step ~pool ~u ~exec:(Update.exec u)) steps;
      check_store_partitions "single store" (Update.store u);
      let fresh = Update.create schema (Update.current_trees u) in
      let s_inc = Session.create (Update.store u) in
      let s_ref = Session.create (Update.store fresh) in
      let rk_inc = Update.ranks u and rk_ref = Update.ranks fresh in
      List.for_all
        (fun (name, q) ->
          let a = rank_set rk_inc (Session.run_ids s_inc q) in
          let b = rank_set rk_ref (Session.run_ids s_ref q) in
          if a <> b then
            QCheck.Test.fail_reportf "%s: incremental %d nodes, re-shred %d" name
              (List.length a) (List.length b)
          else true)
        Xmark.queries)

(* The same differential across a 4-shard cluster: mutations route to
   owning shards, spine replicas stay maintained, scatter-gather answers
   stay byte-identical to a from-scratch unsharded store. *)
let prop_cluster_incremental_equals_reshred =
  QCheck.Test.make ~count:5
    ~name:"incremental mutations equal a full re-shred (4-shard cluster)"
    (steps_arb 8)
    (fun steps ->
      let tree = Xmark.generate ~seed:7 ~items_per_region:1 () in
      let schema = Graph.infer (Doc.of_tree tree) in
      let pool = fragment_pool tree in
      Cluster.with_cluster ~pool_size:0 ~shards:4 schema [ tree ] (fun c ->
          let u = Cluster.full_update c in
          List.iter (apply_step ~pool ~u ~exec:(Cluster.update c)) steps;
          Array.iteri
            (fun i st -> check_store_partitions (Printf.sprintf "shard %d" i) st)
            (Cluster.shard_stores c);
          let fresh = Update.create schema (Update.current_trees u) in
          let s_ref = Session.create (Update.store fresh) in
          let rk_inc = Update.ranks u and rk_ref = Update.ranks fresh in
          List.for_all
            (fun (name, q) ->
              let a = rank_set rk_inc (Cluster.run_ids c q) in
              let b = rank_set rk_ref (Session.run_ids s_ref q) in
              if a <> b then
                QCheck.Test.fail_reportf "%s: cluster %d nodes, re-shred %d" name
                  (List.length a) (List.length b)
              else true)
            Xmark.queries))

(* ORDPATH's guarantee, observed at the store level: no mutation ever
   rewrites a surviving element's stored label, and every parent's
   element children stay strictly label-ordered. *)
let prop_labels_never_rewritten =
  QCheck.Test.make ~count:8 ~name:"no mutation rewrites a surviving stored label"
    (steps_arb 12)
    (fun steps ->
      let tree = Xmark.generate ~seed:13 ~items_per_region:1 () in
      let schema = Graph.infer (Doc.of_tree tree) in
      let pool = fragment_pool tree in
      let u = Update.create schema [ tree ] in
      List.for_all
        (fun step ->
          let snapshot =
            List.map (fun id -> id, Update.node_label u id) (live_ids u)
          in
          apply_step ~pool ~u ~exec:(Update.exec u) step;
          let stable =
            List.for_all
              (fun (id, l) ->
                (not (Update.node_exists u id))
                || String.equal (Update.node_label u id) l)
              snapshot
          in
          let ordered =
            List.for_all
              (fun id ->
                let rec increasing = function
                  | a :: (b :: _ as rest) ->
                    String.compare (Update.node_label u a) (Update.node_label u b) < 0
                    && increasing rest
                  | _ -> true
                in
                increasing (Update.node_children u id))
              (live_ids u)
          in
          stable && ordered)
        steps)

(* ------------------------------------------------------------------ *)
(* Loopback: the wire Update request over TCP                          *)
(* ------------------------------------------------------------------ *)

let with_update_server f =
  let tree = Xmlparser.parse small_xml in
  let schema = Graph.infer (Doc.of_tree tree) in
  let store = Loader.shred schema (Doc.of_tree tree) in
  let u = Update.of_store store [ tree ] in
  let write_path = (Mutex.create (), u) in
  let config = { Server.default_config with port = 0; workers = 2 } in
  let server =
    Server.start ~config (fun () ->
        Server.session_executor ~update:write_path (Session.create store))
  in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let c = Client.connect ~port:(Server.port server) () in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c u))

let test_wire_update_roundtrip () =
  with_update_server (fun c u ->
      let before = Client.run_ids c "//person" in
      Alcotest.(check int) "three persons to start" 3 (List.length before);
      let people = the_one u "people" in
      let o =
        Client.insert c ~parent:people
          {|<person id="p9"><name>net</name></person>|}
      in
      Alcotest.(check int) "two rows inserted over the wire" 2 o.Client.inserted;
      (* the same prepared query re-executes against the mutated store *)
      let after = Client.run_ids c "//person" in
      Alcotest.(check int) "four persons after the insert" 4 (List.length after);
      let newcomer = List.nth (find_by_tag u "person") 3 in
      Alcotest.(check (list int)) "attribute query finds it" [ newcomer ]
        (Client.run_ids c {|//person[@id='p9']|});
      ignore (Client.set_text c ~target:(the_one u "city") "quito");
      Alcotest.(check int) "text visible through a predicate" 1
        (List.length (Client.run_ids c {|//person[address/city='quito']|}));
      let o = Client.delete c ~target:newcomer in
      Alcotest.(check int) "delete removed its rows" 2 o.Client.deleted;
      Alcotest.(check int) "back to three persons" 3
        (List.length (Client.run_ids c "//person")))

let test_wire_update_errors () =
  with_update_server (fun c u ->
      let site = the_one u "site" in
      (match Client.delete c ~target:site with
       | _ -> Alcotest.fail "root delete must fail over the wire"
       | exception Client.Server_error { code = Ppfx_net.Wire.Runtime; _ } -> ());
      (match Client.insert c ~parent:(the_one u "people") "<oops" with
       | _ -> Alcotest.fail "malformed fragment must fail"
       | exception Client.Server_error { code = Ppfx_net.Wire.Parse_error; _ } -> ());
      (* the connection survives both failures *)
      Alcotest.(check int) "still serving" 3 (List.length (Client.run_ids c "//person")))

(* ------------------------------------------------------------------ *)
(* Cluster: shard routing and balance bookkeeping                      *)
(* ------------------------------------------------------------------ *)

let test_cluster_update_routes_and_balances () =
  let tree = Xmark.generate ~seed:3 ~items_per_region:2 () in
  let schema = Graph.infer (Doc.of_tree tree) in
  Cluster.with_cluster ~pool_size:0 ~shards:3 schema [ tree ] (fun c ->
      let u = Cluster.full_update c in
      let before = List.length (Cluster.run_ids c "//person") in
      let people = List.hd (find_by_tag u "people") in
      let o =
        Cluster.update c
          (Update.Insert_subtree
             { parent = people; before = None;
               fragment = frag {|<person id="pz"><name>new</name><emailaddress>mailto:z@x</emailaddress></person>|} })
      in
      Alcotest.(check int) "rows inserted" 3 o.Update.inserted;
      Alcotest.(check int) "scatter sees the new person" (before + 1)
        (List.length (Cluster.run_ids c "//person"));
      (* exactly one shard gained the non-spine rows *)
      let counts = Cluster.shard_row_counts c in
      Alcotest.(check int) "gauge matches the metrics dump" 3
        (List.length (Metrics.shard_rows (Cluster.metrics c)));
      Alcotest.(check (list int)) "metrics mirror the live counts" counts
        (Metrics.shard_rows (Cluster.metrics c));
      let skew = Metrics.shard_skew (Cluster.metrics c) in
      Alcotest.(check bool) "skew gauge is a sane ratio" true
        (skew >= 1.0 && skew < 3.0))

let test_repeated_load_stays_balanced () =
  (* The drift fix: repeated loads steer new frontier subtrees to the
     lightest shards, so cumulative balance holds where per-document
     rounding used to compound. *)
  let schema = Xmark.schema () in
  let t0 = Xmark.generate ~seed:21 ~items_per_region:2 () in
  Cluster.with_cluster ~pool_size:0 ~shards:3 schema [ t0 ] (fun c ->
      for seed = 22 to 27 do
        Cluster.load c (Xmark.generate ~seed ~items_per_region:1 ())
      done;
      let counts = Cluster.partition_counts c in
      let total = Array.fold_left ( + ) 0 counts in
      let ideal = total / Array.length counts in
      Array.iteri
        (fun s n ->
          if n < ideal / 2 || n > ideal + ideal / 2 then
            Alcotest.failf "shard %d drifted to %d rows (ideal %d)" s n ideal)
        counts;
      Alcotest.(check bool) "skew surfaced and modest" true
        (Metrics.shard_skew (Cluster.metrics c) < 1.5))

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "update"
    [
      ( "ops",
        List.map tc
          [
            "insert appends", test_insert_append;
            "insert before", test_insert_before;
            "delete subtree", test_delete;
            "root delete rejected", test_delete_root_rejected;
            "replace keeps position", test_replace;
            "set text", test_set_text;
            "set attribute", test_set_attribute;
            "invalid ops rejected", test_invalid_ops_rejected;
            "paths interned incrementally", test_new_path_interned;
          ] );
      ( "invalidation",
        List.map tc
          [
            "disjoint commit retains the plan", test_plan_retained_on_disjoint_commit;
            "plan older than the commit log re-plans",
            test_plan_older_than_log_conservatively_invalidates;
            "whole-epoch mode invalidates everything",
            test_whole_epoch_invalidation_when_disabled;
          ] );
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_incremental_equals_reshred;
            prop_cluster_incremental_equals_reshred;
            prop_labels_never_rewritten;
          ] );
      ( "wire",
        List.map tc
          [
            "update round-trip over TCP", test_wire_update_roundtrip;
            "typed errors over TCP", test_wire_update_errors;
          ] );
      ( "cluster",
        List.map tc
          [
            "mutation routing + balance gauge", test_cluster_update_routes_and_balances;
            "repeated loads stay balanced", test_repeated_load_stays_balanced;
          ] );
    ]

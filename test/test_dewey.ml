(* Tests for the Dewey binary encoding (paper Section 4.2, Lemmas 1-2,
   Table 2) and the region encoding used by the accelerator baseline. *)

module Dewey = Ppfx_dewey.Dewey
module Region = Ppfx_dewey.Region

let roundtrip_tests =
  let roundtrip components () =
    let d = Dewey.of_components components in
    Alcotest.(check (list int)) "components round-trip" components (Dewey.to_components d)
  in
  [
    "root", roundtrip [ 1 ];
    "deep", roundtrip [ 1; 1; 2; 1; 1 ];
    "zero component", roundtrip [ 1; 0; 5 ];
    "max component", roundtrip [ Dewey.component_max ];
    "mixed large", roundtrip [ 1; 70000; 3; Dewey.component_max; 12 ];
  ]

let invalid_tests =
  let expect_invalid f () =
    match f () with
    | _ -> Alcotest.fail "expected Dewey.Invalid"
    | exception Dewey.Invalid _ -> ()
  in
  [
    "empty vector", expect_invalid (fun () -> Dewey.of_components []);
    "negative component", expect_invalid (fun () -> Dewey.of_components [ 1; -1 ]);
    ( "component too large",
      expect_invalid (fun () -> Dewey.of_components [ Dewey.component_max + 1 ]) );
    ( "malformed raw length",
      expect_invalid (fun () -> Dewey.of_string_exn "\x00\x01") );
    ( "raw with top bit set",
      expect_invalid (fun () -> Dewey.of_string_exn "\xFF\x00\x01") );
  ]

let structure_tests =
  [
    ( "child extends",
      fun () ->
        let d = Dewey.of_components [ 1; 2 ] in
        Alcotest.(check (list int)) "child" [ 1; 2; 7 ]
          (Dewey.to_components (Dewey.child d 7)) );
    ( "parent drops last",
      fun () ->
        let d = Dewey.of_components [ 1; 2; 3 ] in
        (match Dewey.parent d with
         | Some p -> Alcotest.(check (list int)) "parent" [ 1; 2 ] (Dewey.to_components p)
         | None -> Alcotest.fail "expected parent") );
    ( "root has no parent",
      fun () -> Alcotest.(check bool) "no parent" true (Dewey.parent Dewey.root = None) );
    ( "level counts components",
      fun () ->
        Alcotest.(check int) "level" 4 (Dewey.level (Dewey.of_components [ 1; 1; 2; 9 ])) );
    ( "dotted form",
      fun () ->
        Alcotest.(check string) "dotted" "1.1.2"
          (Dewey.to_dotted (Dewey.of_components [ 1; 1; 2 ])) );
  ]

(* The figure-1 document of the paper: positions 1, 1.1, 1.1.1, 1.1.1.1,
   1.1.2, 1.1.2.1, 1.1.2.1.1, 1.1.2.1.2, 1.1.3, 1.2, 1.2.1, 1.2.1.1. *)
let fig1 =
  List.map Dewey.of_components
    [
      [ 1 ];
      [ 1; 1 ];
      [ 1; 1; 1 ];
      [ 1; 1; 1; 1 ];
      [ 1; 1; 2 ];
      [ 1; 1; 2; 1 ];
      [ 1; 1; 2; 1; 1 ];
      [ 1; 1; 2; 1; 2 ];
      [ 1; 1; 3 ];
      [ 1; 2 ];
      [ 1; 2; 1 ];
      [ 1; 2; 1; 1 ];
    ]

(* Ground truth relations from the component vectors themselves. *)
let truth_descendant a b =
  (* b strict descendant of a *)
  let ca = Dewey.to_components a and cb = Dewey.to_components b in
  List.length cb > List.length ca
  &&
  let rec prefix xs ys =
    match xs, ys with
    | [], _ -> true
    | x :: xs, y :: ys -> x = y && prefix xs ys
    | _ :: _, [] -> false
  in
  prefix ca cb

let truth_doc_order a b =
  (* document order on component vectors *)
  let rec cmp xs ys =
    match xs, ys with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs, y :: ys -> if x <> y then compare x y else cmp xs ys
  in
  cmp (Dewey.to_components a) (Dewey.to_components b)

let lemma_tests =
  [
    ( "lemma 1: descendant iff between d and d||F (all fig-1 pairs)",
      fun () ->
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                let by_lemma = Dewey.is_descendant b ~of_:a in
                let by_truth = truth_descendant a b in
                if by_lemma <> by_truth then
                  Alcotest.failf "descendant(%s of %s): lemma %b truth %b"
                    (Dewey.to_dotted b) (Dewey.to_dotted a) by_lemma by_truth)
              fig1)
          fig1 );
    ( "lemma 2: following iff d2 > d1||F (all fig-1 pairs)",
      fun () ->
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                let by_lemma = Dewey.is_following b ~of_:a in
                let by_truth =
                  truth_doc_order b a > 0 && not (truth_descendant a b)
                in
                if by_lemma <> by_truth then
                  Alcotest.failf "following(%s of %s): lemma %b truth %b"
                    (Dewey.to_dotted b) (Dewey.to_dotted a) by_lemma by_truth)
              fig1)
          fig1 );
    ( "lexicographic order is document order",
      fun () ->
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                let c1 = compare (Dewey.compare a b) 0 in
                let c2 = compare (truth_doc_order a b) 0 in
                if c1 <> c2 then
                  Alcotest.failf "order(%s, %s)" (Dewey.to_dotted a) (Dewey.to_dotted b))
              fig1)
          fig1 );
    ( "preceding is the inverse of following",
      fun () ->
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                Alcotest.(check bool) "inverse"
                  (Dewey.is_following b ~of_:a)
                  (Dewey.is_preceding a ~of_:b))
              fig1)
          fig1 );
  ]

(* Random trees: generate random dewey vectors and cross-check all axis
   predicates against the component-vector ground truth. *)
let gen_vector =
  QCheck.Gen.(list_size (int_range 1 6) (int_range 0 3))
  |> QCheck.Gen.map (fun l -> List.map (fun x -> x + 1) l)

let prop_axes =
  QCheck.Test.make ~count:2000 ~name:"axis predicates match component-vector truth"
    (QCheck.make
       ~print:(fun (a, b) ->
         Printf.sprintf "%s vs %s"
           (String.concat "." (List.map string_of_int a))
           (String.concat "." (List.map string_of_int b)))
       (QCheck.Gen.pair gen_vector gen_vector))
    (fun (ca, cb) ->
      let a = Dewey.of_components ca and b = Dewey.of_components cb in
      let desc = Dewey.is_descendant b ~of_:a = truth_descendant a b in
      let anc = Dewey.is_ancestor a ~of_:b = truth_descendant a b in
      let fol =
        Dewey.is_following b ~of_:a
        = (truth_doc_order b a > 0 && not (truth_descendant a b))
      in
      let prec =
        Dewey.is_preceding b ~of_:a
        = (truth_doc_order a b > 0 && not (truth_descendant b a))
      in
      let order = compare (Dewey.compare a b) 0 = compare (truth_doc_order a b) 0 in
      desc && anc && fol && prec && order)

let prop_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"of_components/to_components round-trip"
    (QCheck.make
       ~print:(fun l -> String.concat "." (List.map string_of_int l))
       QCheck.Gen.(list_size (int_range 1 8) (int_range 0 100000)))
    (fun l -> Dewey.to_components (Dewey.of_components l) = l)

let region_tests =
  (* The fig-1(b) tree as pre/post/level triples, derived by hand:
       A(pre 0) B(1) C(2) D(3) C(4) E(5) F(6) F(7) G(8) B(9) G(10) G(11) *)
  let mk pre post level = { Region.pre; post; level } in
  let a = mk 0 11 1 in
  let b1 = mk 1 5 2 in
  let c1 = mk 2 1 3 in
  let d = mk 3 0 4 in
  let c2 = mk 4 4 3 in
  let f1 = mk 6 2 5 in
  let b2 = mk 9 10 2 in
  [
    ( "descendant quadrant",
      fun () ->
        Alcotest.(check bool) "d desc of b1" true (Region.is_descendant d ~of_:b1);
        Alcotest.(check bool) "d desc of a" true (Region.is_descendant d ~of_:a);
        Alcotest.(check bool) "b2 not desc of b1" false (Region.is_descendant b2 ~of_:b1) );
    ( "ancestor quadrant",
      fun () ->
        Alcotest.(check bool) "b1 anc of f1" true (Region.is_ancestor b1 ~of_:f1);
        Alcotest.(check bool) "c1 not anc of f1" false (Region.is_ancestor c1 ~of_:f1) );
    ( "following quadrant",
      fun () ->
        Alcotest.(check bool) "c2 following c1" true (Region.is_following c2 ~of_:c1);
        Alcotest.(check bool) "d not following c2" false (Region.is_following d ~of_:c2) );
    ( "preceding quadrant",
      fun () ->
        Alcotest.(check bool) "c1 preceding f1" true (Region.is_preceding c1 ~of_:f1);
        Alcotest.(check bool) "a not preceding f1" false (Region.is_preceding a ~of_:f1) );
    ( "child and parent need adjacent levels",
      fun () ->
        Alcotest.(check bool) "c1 child of b1" true (Region.is_child c1 ~of_:b1);
        Alcotest.(check bool) "d not child of b1" false (Region.is_child d ~of_:b1);
        Alcotest.(check bool) "b1 parent of c1" true (Region.is_parent b1 ~of_:c1) );
  ]

(* ------------------------------------------------------------------ *)
(* ORDPATH                                                             *)
(* ------------------------------------------------------------------ *)

module Ordpath = Ppfx_dewey.Ordpath

let ordpath_unit_tests =
  [
    ( "bulk-load children use odd components",
      fun () ->
        let r = Ordpath.root in
        Alcotest.(check string) "first child" "1.1" (Ordpath.to_dotted (Ordpath.child r 1));
        Alcotest.(check string) "third child" "1.5" (Ordpath.to_dotted (Ordpath.child r 3)) );
    ( "insert after the last sibling",
      fun () ->
        let c1 = Ordpath.child Ordpath.root 1 in
        let n = Ordpath.insert_between (Some c1) None in
        Alcotest.(check string) "after" "1.3" (Ordpath.to_dotted n) );
    ( "insert before the first sibling",
      fun () ->
        let c1 = Ordpath.child Ordpath.root 1 in
        let n = Ordpath.insert_between None (Some c1) in
        Alcotest.(check string) "before" "1.-1" (Ordpath.to_dotted n);
        Alcotest.(check bool) "orders before" true (Ordpath.compare n c1 < 0) );
    ( "insert between adjacent odds uses a caret",
      fun () ->
        let c1 = Ordpath.child Ordpath.root 1 in
        let c2 = Ordpath.child Ordpath.root 2 in
        let n = Ordpath.insert_between (Some c1) (Some c2) in
        Alcotest.(check string) "caret" "1.2.1" (Ordpath.to_dotted n);
        Alcotest.(check bool) "between" true
          (Ordpath.compare c1 n < 0 && Ordpath.compare n c2 < 0);
        (* the careted label is still at the sibling level *)
        Alcotest.(check int) "level" 2 (Ordpath.level n);
        Alcotest.(check bool) "same parent" true (Ordpath.parent n = Some Ordpath.root) );
    ( "repeated splitting never disturbs existing labels",
      fun () ->
        let c1 = Ordpath.child Ordpath.root 1 in
        let c2 = Ordpath.child Ordpath.root 2 in
        let rec split left right n acc =
          if n = 0 then acc
          else begin
            let mid = Ordpath.insert_between (Some left) (Some right) in
            split left mid (n - 1) (mid :: acc)
          end
        in
        let labels = split c1 c2 20 [] in
        List.iter
          (fun l ->
            Alcotest.(check bool) "in range" true
              (Ordpath.compare c1 l < 0 && Ordpath.compare l c2 < 0);
            Alcotest.(check int) "level" 2 (Ordpath.level l))
          labels );
    ( "descendant predicate matches dewey semantics",
      fun () ->
        let c = Ordpath.child Ordpath.root 2 in
        let gc = Ordpath.child c 1 in
        Alcotest.(check bool) "desc" true (Ordpath.is_descendant gc ~of_:c);
        Alcotest.(check bool) "desc of root" true (Ordpath.is_descendant gc ~of_:Ordpath.root);
        Alcotest.(check bool) "not self" false (Ordpath.is_descendant c ~of_:c);
        Alcotest.(check bool) "following" true
          (Ordpath.is_following c ~of_:(Ordpath.child Ordpath.root 1)) );
    ( "invalid labels rejected",
      fun () ->
        (match Ordpath.of_components [ 2 ] with
         | _ -> Alcotest.fail "even terminal should be rejected"
         | exception Ordpath.Invalid _ -> ());
        match Ordpath.insert_between None None with
        | _ -> Alcotest.fail "expected Invalid"
        | exception Ordpath.Invalid _ -> () );
  ]

(* Property: a random sequence of sibling insertions (at random gaps)
   keeps the labels strictly ordered, at the right level, with the right
   parent — and never changes an existing label. *)
let prop_ordpath_insertions =
  QCheck.Test.make ~count:500 ~name:"random sibling insertions stay ordered and leveled"
    QCheck.(make ~print:(fun ops -> String.concat ";" (List.map string_of_int ops))
              (Gen.list_size (Gen.int_range 1 60) (Gen.int_bound 1000)))
    (fun ops ->
      let parent = Ordpath.child Ordpath.root 3 in
      let labels = ref [| Ordpath.child parent 1 |] in
      List.for_all
        (fun gap_seed ->
          let arr = !labels in
          let n = Array.length arr in
          let gap = gap_seed mod (n + 1) in
          let left = if gap = 0 then None else Some arr.(gap - 1) in
          let right = if gap = n then None else Some arr.(gap) in
          let fresh = Ordpath.insert_between left right in
          let updated = Array.make (n + 1) fresh in
          Array.blit arr 0 updated 0 gap;
          updated.(gap) <- fresh;
          Array.blit arr gap updated (gap + 1) (n - gap);
          labels := updated;
          (* strictly ordered *)
          let sorted = ref true in
          for i = 0 to n - 1 do
            if Ordpath.compare updated.(i) updated.(i + 1) >= 0 then sorted := false
          done;
          !sorted
          && Ordpath.level fresh = 3
          && Ordpath.parent fresh = Some parent
          && Ordpath.is_descendant fresh ~of_:parent)
        ops)

(* Caret-heavy trees: grow a random tree by bulk child appends and
   insert_between splices at random gaps, then check on {e every} pair of
   labels that the Table-2 byte-window predicate — descendants of [d] are
   exactly the labels strictly between [d] and [d || 0xFF] — agrees with
   the construction's ground-truth ancestry, that [is_descendant] agrees
   with both, and that lexicographic byte order over all labels equals
   the tree's DFS preorder (document order). Existing labels are never
   touched by an insert, so sorting at the end is only correct if every
   earlier label kept its byte image. *)
let prop_ordpath_caret_window =
  QCheck.Test.make ~count:200
    ~name:"Table-2 descendant window + document order hold on careted trees"
    QCheck.(
      make
        ~print:(fun ops ->
          String.concat ";"
            (List.map (fun (a, b) -> Printf.sprintf "%d,%d" a b) ops))
        (Gen.list_size (Gen.int_range 1 30)
           (Gen.pair (Gen.int_bound 10000) (Gen.int_bound 10000))))
    (fun ops ->
      let raw = Ordpath.to_raw in
      let labels = ref [ Ordpath.root ] in
      (* children in sibling (label) order, keyed by the parent's bytes *)
      let kids : (string, Ordpath.t list) Hashtbl.t = Hashtbl.create 16 in
      (* ancestor byte-sets from the construction: the ground truth *)
      let anc : (string, string list) Hashtbl.t = Hashtbl.create 16 in
      Hashtbl.replace anc (raw Ordpath.root) [];
      List.iter
        (fun (pick, gap_seed) ->
          let arr = Array.of_list !labels in
          let p = arr.(pick mod Array.length arr) in
          let sibs = Option.value ~default:[] (Hashtbl.find_opt kids (raw p)) in
          let k = List.length sibs in
          let gap = gap_seed mod (k + 1) in
          let left = if gap = 0 then None else Some (List.nth sibs (gap - 1)) in
          let right = if gap = k then None else Some (List.nth sibs gap) in
          let fresh =
            if k = 0 then Ordpath.child p 1 else Ordpath.insert_between left right
          in
          Hashtbl.replace kids (raw p)
            (List.filteri (fun i _ -> i < gap) sibs
            @ (fresh :: List.filteri (fun i _ -> i >= gap) sibs));
          Hashtbl.replace anc (raw fresh) (raw p :: Hashtbl.find anc (raw p));
          labels := fresh :: !labels)
        ops;
      let window_ok =
        List.for_all
          (fun d ->
            let lo = raw d in
            let hi = lo ^ "\xFF" in
            List.for_all
              (fun l ->
                let lraw = raw l in
                let in_window =
                  String.compare lo lraw < 0 && String.compare lraw hi < 0
                in
                let truth = List.mem lo (Hashtbl.find anc lraw) in
                Ordpath.is_descendant l ~of_:d = truth && in_window = truth)
              !labels)
          !labels
      in
      let rec dfs l =
        l
        :: List.concat_map dfs
             (Option.value ~default:[] (Hashtbl.find_opt kids (raw l)))
      in
      let order_ok =
        List.map raw (dfs Ordpath.root)
        = List.map raw
            (List.sort (fun a b -> String.compare (raw a) (raw b)) !labels)
      in
      window_ok && order_ok)

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "dewey"
    [
      "roundtrip", List.map tc roundtrip_tests;
      "invalid", List.map tc invalid_tests;
      "structure", List.map tc structure_tests;
      "lemmas", List.map tc lemma_tests;
      "region", List.map tc region_tests;
      "ordpath", List.map tc ordpath_unit_tests;
      ( "ordpath-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_ordpath_insertions; prop_ordpath_caret_window ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_axes; prop_roundtrip ] );
    ]

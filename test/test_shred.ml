(* Tests for the shredders: the schema-aware mapping of paper Section 3
   (relations, descriptor columns, parent foreign keys, the Paths
   relation, the Section 3.1 indexes) and the Edge mapping of Section
   5.1. *)

module Graph = Ppfx_schema.Graph
module Mapping = Ppfx_shred.Mapping
module Loader = Ppfx_shred.Loader
module Edge = Ppfx_shred.Edge
module Doc = Ppfx_xml.Doc
module Table = Ppfx_minidb.Table
module Database = Ppfx_minidb.Database
module Value = Ppfx_minidb.Value
module Dewey = Ppfx_dewey.Dewey
module Ordpath = Ppfx_dewey.Ordpath

let fig1_schema () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.define b ~attrs:[ "x" ] "A" in
  let bb = Graph.Builder.define b "B" in
  let c = Graph.Builder.define b "C" in
  let d = Graph.Builder.define b ~text:true "D" in
  let e = Graph.Builder.define b "E" in
  let f = Graph.Builder.define b ~text:true "F" in
  let g = Graph.Builder.define b "G" in
  Graph.Builder.add_child b ~parent:a bb;
  Graph.Builder.add_child b ~parent:bb c;
  Graph.Builder.add_child b ~parent:bb g;
  Graph.Builder.add_child b ~parent:c d;
  Graph.Builder.add_child b ~parent:c e;
  Graph.Builder.add_child b ~parent:e f;
  Graph.Builder.add_child b ~parent:g g;
  Graph.Builder.finish b ~root:a

let fig1_doc () =
  Doc.of_tree
    (Ppfx_xml.Parser.parse
       "<A x=\"3\"><B><C><D>d1</D></C><C><E><F>1</F><F>2</F></E></C><G/></B><B><G><G/></G></B></A>")

let find1 schema name =
  match Graph.find schema name with
  | [ d ] -> d
  | _ -> Alcotest.failf "expected one def for %s" name

let mapping_tests =
  [
    ( "descriptor columns per paper section 3",
      fun () ->
        let schema = fig1_schema () in
        let mapping = Mapping.of_schema schema in
        let cols =
          List.map (fun (c : Table.column) -> c.Table.name)
            (Mapping.columns_of_def mapping (find1 schema "G"))
        in
        (* G has two possible parents (B and the recursive G itself). *)
        Alcotest.(check (list string)) "G columns"
          [ "id"; "B_id"; "G_id"; "dewey_pos"; "path_id"; "text"; "dtext"; "ord"; "sibs" ]
          cols;
        let a_cols =
          List.map (fun (c : Table.column) -> c.Table.name)
            (Mapping.columns_of_def mapping (find1 schema "A"))
        in
        (* The root relation gets doc_id; attributes get the attr_ prefix. *)
        Alcotest.(check bool) "doc_id" true (List.mem "doc_id" a_cols);
        Alcotest.(check bool) "attr_x" true (List.mem "attr_x" a_cols) );
    ( "section 3.1 indexes exist",
      fun () ->
        let store = Loader.shred (fig1_schema ()) (fig1_doc ()) in
        let g = Database.table store.Loader.db "G" in
        let index_cols = List.map fst (Table.indexes g) in
        Alcotest.(check bool) "id" true (List.mem [ "id" ] index_cols);
        Alcotest.(check bool) "B fk" true (List.mem [ "B_id" ] index_cols);
        Alcotest.(check bool) "G fk" true (List.mem [ "G_id" ] index_cols);
        Alcotest.(check bool) "composite dewey+path" true
          (List.mem [ "dewey_pos"; "path_id" ] index_cols) );
    ( "paths relation interns each path once",
      fun () ->
        let store = Loader.shred (fig1_schema ()) (fig1_doc ()) in
        let paths = Database.table store.Loader.db "paths" in
        Alcotest.(check int) "8 distinct paths" 8 (Table.row_count paths);
        Alcotest.(check bool) "lookup" true (Loader.path_id store "/A/B/C/D" <> None);
        Alcotest.(check bool) "missing" true (Loader.path_id store "/A/Z" = None) );
    ( "rows carry correct descriptors",
      fun () ->
        let store = Loader.shred (fig1_schema ()) (fig1_doc ()) in
        let f = Database.table store.Loader.db "F" in
        Alcotest.(check int) "two F rows" 2 (Table.row_count f);
        let row = Table.row f 0 in
        (match row.(0), row.(2), row.(4) with
         | Value.Int 7, Value.Bin label, Value.Str "1" ->
           (* Stored labels are ORDPATH: the doc_id component followed by
              the Dewey vector, each component odd-mapped to [2c - 1] so
              the write path can caret inserts between them. Dewey
              1.1.2.1.1 in document 1 therefore stores as 1.1.1.3.1.1. *)
           Alcotest.(check string) "label of first F" "1.1.1.3.1.1"
             (Ordpath.to_dotted (Ordpath.of_raw label));
           Alcotest.(check string) "loader label helper" label
             (Loader.label ~doc_id:1 (Dewey.of_components [ 1; 1; 2; 1; 1 ]))
         | _ -> Alcotest.fail "unexpected F row shape") );
    ( "parent foreign keys point at the right relation",
      fun () ->
        let store = Loader.shred (fig1_schema ()) (fig1_doc ()) in
        let g = Database.table store.Loader.db "G" in
        (* G id 12 is nested under G id 11; G id 9 and 11 under B. *)
        let fk_pairs = ref [] in
        Table.iter_rows
          (fun _ row ->
            match row.(0), row.(1), row.(2) with
            | Value.Int id, b_fk, g_fk -> fk_pairs := (id, b_fk, g_fk) :: !fk_pairs
            | _ -> ())
          g;
        let sorted = List.sort compare !fk_pairs in
        Alcotest.(check bool) "fk shape" true
          (sorted
          = [
              9, Value.Int 2, Value.Null;
              11, Value.Int 10, Value.Null;
              12, Value.Null, Value.Int 11;
            ]) );
    ( "non-conforming documents are rejected",
      fun () ->
        let schema = fig1_schema () in
        let bad = Doc.of_tree (Ppfx_xml.Parser.parse "<A><D/></A>") in
        (match Loader.shred schema bad with
         | _ -> Alcotest.fail "expected Rejected"
         | exception Loader.Rejected _ -> ());
        let wrong_root = Doc.of_tree (Ppfx_xml.Parser.parse "<Z/>") in
        match Loader.shred schema wrong_root with
        | _ -> Alcotest.fail "expected Rejected"
        | exception Loader.Rejected _ -> () );
    ( "def_of_element recovers the schema vertex",
      fun () ->
        let schema = fig1_schema () in
        let doc = fig1_doc () in
        let store = Loader.shred schema doc in
        let def = Loader.def_of_element store ~doc 7 in
        Alcotest.(check string) "F" "F" def.Graph.name );
    ( "multiple documents share the paths relation",
      fun () ->
        let schema = fig1_schema () in
        let store = Loader.create (Mapping.of_schema schema) in
        let doc1 = Doc.of_tree (Ppfx_xml.Parser.parse "<A><B><C><D/></C></B></A>") in
        let doc2 = Doc.of_tree (Ppfx_xml.Parser.parse "<A><B><C><D/><E><F/></E></C></B></A>") in
        let store = Loader.load store doc1 in
        let n_after_one = Table.row_count (Database.table store.Loader.db "paths") in
        let store = Loader.load store doc2 in
        let n_after_two = Table.row_count (Database.table store.Loader.db "paths") in
        Alcotest.(check int) "doc1 paths" 4 n_after_one;
        (* doc2 adds only the two new paths (E and F). *)
        Alcotest.(check int) "incremental interning" 6 n_after_two;
        Alcotest.(check int) "two docs loaded" 2 (List.length store.Loader.docs) );
  ]

let edge_tests =
  [
    ( "central relation holds every element",
      fun () ->
        let doc = fig1_doc () in
        let store = Edge.shred doc in
        let edge = Database.table store.Edge.db "edge" in
        Alcotest.(check int) "12 elements" 12 (Table.row_count edge) );
    ( "attributes live in the separate attr relation (footnote 3)",
      fun () ->
        let doc = fig1_doc () in
        let store = Edge.shred doc in
        let attr = Database.table store.Edge.db "attr" in
        Alcotest.(check int) "one attribute" 1 (Table.row_count attr);
        match Table.row attr 0 with
        | [| Value.Int 1; Value.Str "x"; Value.Str "3" |] -> ()
        | _ -> Alcotest.fail "unexpected attr row" );
    ( "edge rows carry tag, parent and dewey",
      fun () ->
        let doc = fig1_doc () in
        let store = Edge.shred doc in
        let edge = Database.table store.Edge.db "edge" in
        (match Table.row edge 0 with
         | [| Value.Int 1; Value.Null; Value.Str "A"; Value.Bin _; Value.Int _; _; _; _; _ |] ->
           ()
         | _ -> Alcotest.fail "root row shape");
        match Table.row edge 3 with
        | [| Value.Int 4; Value.Int 3; Value.Str "D"; Value.Bin d; Value.Int _; _; _;
             Value.Int 1; Value.Int 1 |] ->
          (* doc_id component prefix, then the local position *)
          Alcotest.(check string) "dewey" "1.1.1.1.1"
            (Dewey.to_dotted (Dewey.of_string_exn d))
        | _ -> Alcotest.fail "D row shape" );
    ( "edge paths relation matches the document's distinct paths",
      fun () ->
        let doc = fig1_doc () in
        let store = Edge.shred doc in
        let paths = Database.table store.Edge.db "paths" in
        Alcotest.(check int) "count" (List.length (Doc.distinct_paths doc))
          (Table.row_count paths) );
  ]

(* Property: shredding then reading back through SQL reconstructs every
   element's descriptors for random small documents. *)
let gen_doc =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c" ] in
  let rec gen n =
    map2
      (fun t children -> Ppfx_xml.Tree.Element { tag = t; attrs = []; children })
      tag
      (if n <= 0 then return [] else list_size (int_bound 3) (gen (n / 2)))
  in
  map (fun t -> Doc.of_tree t) (gen 4)

let prop_edge_complete =
  QCheck.Test.make ~count:200 ~name:"edge shredding preserves ids, parents and paths"
    (QCheck.make ~print:(fun d -> string_of_int (Doc.size d)) gen_doc)
    (fun doc ->
      let store = Edge.shred doc in
      let edge = Database.table store.Edge.db "edge" in
      if Table.row_count edge <> Doc.size doc then false
      else begin
        let ok = ref true in
        Table.iter_rows
          (fun _ row ->
            match row.(0), row.(1) with
            | Value.Int id, parent ->
              let e = Doc.element doc id in
              let expected_parent =
                if e.Doc.parent = 0 then Value.Null else Value.Int e.Doc.parent
              in
              if parent <> expected_parent then ok := false
            | _ -> ok := false)
          edge;
        !ok
      end)

(* The schema-aware shredder's physical layout: every element fact
   table is partitioned by [path_id] with [dewey_pos]-sorted segments,
   the [paths] dimension stays a heap, and a freshly shredded store
   satisfies the partition invariant. [~partitioned:false] restores the
   flat heap layout for comparisons. *)
let layout_tests =
  [
    ( "shredded fact tables are path-partitioned and dewey-sorted",
      fun () ->
        let st = Loader.shred (fig1_schema ()) (fig1_doc ()) in
        List.iter
          (fun t ->
            if Table.name t = "paths" then
              Alcotest.(check bool) "paths stays a heap" true
                (Table.partition_spec t = None)
            else
              match Table.partition_spec t with
              | Some s ->
                Alcotest.(check string) "partition column" "path_id" s.Table.part_col;
                Alcotest.(check string) "sort column" "dewey_pos" s.Table.part_sort;
                (match Table.check_partitions t with
                 | Ok () -> ()
                 | Error e -> Alcotest.failf "%s: %s" (Table.name t) e)
              | None -> Alcotest.failf "%s: expected partitioned layout" (Table.name t))
          (Database.tables st.Loader.db) );
    ( "partitioned layout can be disabled",
      fun () ->
        let st =
          Loader.load
            (Loader.create ~partitioned:false (Mapping.of_schema (fig1_schema ())))
            (fig1_doc ())
        in
        List.iter
          (fun t ->
            Alcotest.(check bool)
              (Table.name t ^ " is a heap")
              true
              (Table.partition_spec t = None))
          (Database.tables st.Loader.db) );
  ]

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "shred"
    [
      "schema-aware", List.map tc mapping_tests;
      "edge", List.map tc edge_tests;
      "layout", List.map tc layout_tests;
      "properties", [ QCheck_alcotest.to_alcotest prop_edge_complete ];
    ]

(* Integration tests for the wire-protocol server and typed client over
   loopback: byte-identical results vs the in-process session, windowed
   fetch backpressure, concurrent clients through the pool, error
   containment (a malformed frame kills only its own connection),
   admission control at both levels, and shutdown that drains in-flight
   requests. *)

module Doc = Ppfx_xml.Doc
module Loader = Ppfx_shred.Loader
module Session = Ppfx_service.Session
module Metrics = Ppfx_service.Metrics
module Xmark = Ppfx_workloads.Xmark
module Wire = Ppfx_net.Wire
module Server = Ppfx_net.Server
module Client = Ppfx_client.Client
module Pool = Ppfx_client.Pool
module Row = Ppfx_client.Row

let store =
  let doc = Doc.of_tree (Xmark.generate ~items_per_region:3 ()) in
  Loader.shred (Xmark.schema ()) doc

let factory () = Server.session_executor (Session.create store)

let with_server ?(config = Server.default_config) f =
  let server = Server.start ~config factory in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let with_client server f =
  let c = Client.connect ~port:(Server.port server) () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* ------------------------------------------------------------------ *)
(* Result identity vs the in-process session                           *)
(* ------------------------------------------------------------------ *)

let workload_identical () =
  with_server @@ fun server ->
  with_client server @@ fun c ->
  let session = Session.create store in
  List.iter
    (fun (name, q) ->
      Alcotest.(check (list int))
        (name ^ " over the wire = in-process")
        (Session.run_ids session q) (Client.run_ids c q))
    Xmark.queries

let rows_identical_windowed () =
  (* A 2-row fetch window forces the Execute/Fetch/more loop; the
     reassembled result must still equal the in-process one, row for
     row, value for value. *)
  with_server ~config:{ Server.default_config with fetch_window = 2 }
  @@ fun server ->
  with_client server @@ fun c ->
  let session = Session.create store in
  List.iter
    (fun (name, q) ->
      let wire = Client.run_result c q in
      let local =
        let p = Session.prepare session q in
        match Session.sql p with
        | None -> { Ppfx_minidb.Engine.columns = []; rows = [] }
        | Some _ -> Session.execute session p
      in
      Alcotest.(check (list string))
        (name ^ " columns") local.Ppfx_minidb.Engine.columns
        wire.Ppfx_minidb.Engine.columns;
      Alcotest.(check int)
        (name ^ " row count")
        (List.length local.Ppfx_minidb.Engine.rows)
        (List.length wire.Ppfx_minidb.Engine.rows);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) (name ^ " row values") true
            (Array.for_all2 Ppfx_minidb.Value.equal a b))
        local.Ppfx_minidb.Engine.rows wire.Ppfx_minidb.Engine.rows)
    [ "Q1", Xmark.query "Q1"; "Q3", Xmark.query "Q3"; "Q6", Xmark.query "Q6" ]

let typed_rows () =
  with_server @@ fun server ->
  with_client server @@ fun c ->
  let stmt = Client.prepare c (Xmark.query "Q1") in
  let cols = Client.columns stmt in
  Alcotest.(check bool) "has columns" true (cols <> []);
  let first = (List.hd cols).Wire.name in
  let rows = Client.execute c stmt in
  Alcotest.(check bool) "has rows" true (rows <> []);
  List.iter
    (fun row ->
      Alcotest.(check bool) "first column is an int id" true
        (Row.int_exn row first >= 0);
      match Row.int row "no_such_column" with
      | _ -> Alcotest.fail "missing column accepted"
      | exception Row.No_column _ -> ())
    rows;
  Client.close_stmt c stmt

(* ------------------------------------------------------------------ *)
(* Concurrency: a pool of clients against one server                   *)
(* ------------------------------------------------------------------ *)

let concurrent_pool () =
  with_server ~config:{ Server.default_config with workers = 2 }
  @@ fun server ->
  let session = Session.create store in
  let expected =
    List.map (fun (_, q) -> q, Session.run_ids session q) Xmark.queries
  in
  let pool = Pool.create ~size:4 ~port:(Server.port server) () in
  let mismatches = Atomic.make 0 in
  let threads =
    List.init 8 (fun i ->
        Thread.create
          (fun () ->
            List.iteri
              (fun j (q, want) ->
                if (i + j) mod 3 = 0 then ignore (Pool.with_conn pool Client.ping);
                if Pool.run_ids pool q <> want then Atomic.incr mismatches)
              expected)
          ())
  in
  List.iter Thread.join threads;
  Pool.close pool;
  Alcotest.(check int) "every concurrent result identical" 0
    (Atomic.get mismatches);
  let m = Server.metrics server in
  Alcotest.(check bool) "connections were pooled" true (Metrics.accepted m <= 4);
  Alcotest.(check bool) "traffic counted" true
    (Metrics.bytes_in m > 0 && Metrics.bytes_out m > 0)

(* ------------------------------------------------------------------ *)
(* Error containment                                                   *)
(* ------------------------------------------------------------------ *)

let query_error_keeps_connection () =
  with_server @@ fun server ->
  with_client server @@ fun c ->
  (match Client.run_ids c "//a[" with
   | _ -> Alcotest.fail "malformed XPath accepted"
   | exception Client.Server_error { code = Wire.Parse_error; _ } -> ());
  (match Client.prepare c (Xmark.query "QA") with
   | stmt -> Client.close_stmt c stmt
   | exception Client.Server_error { code = Wire.Unsupported; _ } -> ());
  (* The connection survived both failures. *)
  Client.ping c;
  Alcotest.(check bool) "still serves queries" true
    (Client.run_ids c (Xmark.query "Q1") <> [])

let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  ignore
    (Wire.send_request fd
       (Wire.Hello { version = Wire.protocol_version; client = "raw" }));
  (match Wire.recv_response fd with
   | Some (Wire.Welcome _) -> ()
   | _ -> Alcotest.fail "no Welcome on raw connection");
  fd

let malformed_frame_isolated () =
  with_server @@ fun server ->
  with_client server @@ fun healthy ->
  let fd = raw_connect (Server.port server) in
  (* A frame with an unknown tag: the offending connection gets a
     Protocol error frame and is closed... *)
  ignore (Wire.write_frame fd "\x50\xde\xad\xbe\xef");
  (match Wire.recv_response fd with
   | Some (Wire.Error { code = Wire.Protocol; _ }) -> ()
   | Some _ -> Alcotest.fail "expected a Protocol error frame"
   | None -> Alcotest.fail "connection closed without an error frame");
  (match Wire.recv_response fd with
   | None -> ()
   | Some _ -> Alcotest.fail "connection not closed after protocol error"
   | exception Wire.Codec Wire.Truncated -> ());
  Unix.close fd;
  (* ...while every other connection keeps serving. *)
  Client.ping healthy;
  Alcotest.(check bool) "other connections unaffected" true
    (Client.run_ids healthy (Xmark.query "Q1") <> []);
  (* And new connections are still accepted. *)
  with_client server @@ fun fresh -> Client.ping fresh

let abrupt_disconnect_isolated () =
  with_server @@ fun server ->
  with_client server @@ fun healthy ->
  (* Kill a connection mid-request: send Execute for a prepared
     statement and slam the socket shut without reading. *)
  let fd = raw_connect (Server.port server) in
  ignore (Wire.send_request fd (Wire.Prepare { query = Xmark.query "Q1" }));
  (match Wire.recv_response fd with
   | Some (Wire.Prepared { stmt; _ }) ->
     ignore (Wire.send_request fd (Wire.Execute { stmt; window = 0 }))
   | _ -> Alcotest.fail "prepare failed");
  Unix.close fd;
  (* The server must absorb the dead peer (EPIPE/ECONNRESET on its
     pending write) and keep everyone else alive. *)
  Client.ping healthy;
  Alcotest.(check bool) "server survives dead peers" true
    (Client.run_ids healthy (Xmark.query "Q3") <> [])

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let connection_admission () =
  with_server ~config:{ Server.default_config with max_connections = 1 }
  @@ fun server ->
  with_client server @@ fun first ->
  (match Client.connect ~port:(Server.port server) () with
   | c ->
     Client.close c;
     Alcotest.fail "second connection accepted over max_connections"
   | exception Client.Server_error { code = Wire.Admission; _ } -> ());
  (* The admitted connection is unaffected by the rejection. *)
  Client.ping first;
  let m = Server.metrics server in
  Alcotest.(check int) "one accepted" 1 (Metrics.accepted m);
  Alcotest.(check bool) "rejection counted" true (Metrics.rejected m >= 1);
  (* Closing the admitted connection frees the slot. *)
  Client.close first;
  let rec retry n =
    match Client.connect ~port:(Server.port server) () with
    | c -> Client.close c
    | exception Client.Server_error { code = Wire.Admission; _ } when n > 0 ->
      Thread.delay 0.05;
      retry (n - 1)
  in
  retry 40

let request_admission () =
  (* queue_depth 0: every request is turned away at the dispatch queue —
     including the handshake — but the TCP accept itself succeeded, so
     the rejection is request-level (accepted=1, not 0). *)
  with_server ~config:{ Server.default_config with queue_depth = 0 }
  @@ fun server ->
  (match Client.connect ~port:(Server.port server) () with
   | c ->
     Client.close c;
     Alcotest.fail "request admitted through a zero-depth queue"
   | exception Client.Server_error { code = Wire.Admission; _ } -> ());
  let m = Server.metrics server in
  Alcotest.(check int) "connection was accepted" 1 (Metrics.accepted m);
  Alcotest.(check bool) "request rejected" true (Metrics.rejected m >= 1)

(* ------------------------------------------------------------------ *)
(* Pool retries                                                        *)
(* ------------------------------------------------------------------ *)

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

let retries_exhausted_typed () =
  (* Nothing listens on the port: every attempt fails with ECONNREFUSED
     and the pool surfaces the typed exhaustion, not the raw Unix error. *)
  let pool =
    Pool.create ~size:1 ~retries:3 ~backoff:0.002 ~max_backoff:0.01 ~timeout:0.5
      ~port:(free_port ()) ()
  in
  (match Pool.run_ids pool "//person" with
   | _ -> Alcotest.fail "connect to a dead port must fail"
   | exception Pool.Retries_exhausted { attempts; last } ->
     Alcotest.(check int) "whole attempt budget spent" 3 attempts;
     (match last with
      | Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
      | e -> Alcotest.failf "unexpected last error: %s" (Printexc.to_string e)));
  Pool.close pool

let retry_reaches_late_server () =
  (* The server comes up only after the pool's first attempts have
     failed: the capped backoff must carry the operation through to the
     working connection instead of leaking the early refusals. *)
  let port = free_port () in
  let pool =
    Pool.create ~size:1 ~retries:10 ~backoff:0.02 ~max_backoff:0.1 ~timeout:1.0
      ~port ()
  in
  let server_cell = ref None in
  let starter =
    Thread.create
      (fun () ->
        Thread.delay 0.08;
        server_cell := Some (Server.start ~config:{ Server.default_config with port } factory))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join starter;
      Pool.close pool;
      Option.iter Server.stop !server_cell)
    (fun () ->
      let session = Session.create store in
      Alcotest.(check (list int)) "retried query equals in-process"
        (Session.run_ids session (Xmark.query "Q1"))
        (Pool.run_ids pool (Xmark.query "Q1")))

let non_transient_not_retried () =
  with_server @@ fun server ->
  let pool = Pool.create ~size:1 ~retries:5 ~backoff:0.01 ~port:(Server.port server) () in
  Fun.protect
    ~finally:(fun () -> Pool.close pool)
    (fun () ->
      (* a query error is not transient: it must surface immediately as
         Server_error, not burn the retry budget *)
      match Pool.run_ids pool "//a[" with
      | _ -> Alcotest.fail "malformed XPath accepted"
      | exception Client.Server_error { code = Wire.Parse_error; _ } -> ()
      | exception Pool.Retries_exhausted _ ->
        Alcotest.fail "non-transient failure was retried")

(* ------------------------------------------------------------------ *)
(* Shutdown drain                                                      *)
(* ------------------------------------------------------------------ *)

let shutdown_drains () =
  let server = Server.start factory in
  let fd = raw_connect (Server.port server) in
  ignore (Wire.send_request fd (Wire.Prepare { query = Xmark.query "Q1" }));
  let stmt =
    match Wire.recv_response fd with
    | Some (Wire.Prepared { stmt; _ }) -> stmt
    | _ -> Alcotest.fail "prepare failed"
  in
  (* Fire the request and only then stop the server: the response must
     still arrive (drained), followed by Bye. *)
  ignore (Wire.send_request fd (Wire.Execute { stmt; window = 0 }));
  let stopper = Thread.create (fun () -> Server.stop server) () in
  (match Wire.recv_response fd with
   | Some (Wire.Rows { rows; more; _ }) ->
     Alcotest.(check bool) "in-flight request completed" true (rows <> []);
     Alcotest.(check bool) "no dangling cursor" false more
   | Some r ->
     Alcotest.failf "expected Rows, got %s"
       (match r with
        | Wire.Error { message; _ } -> "Error: " ^ message
        | Wire.Bye -> "Bye"
        | _ -> "other")
   | None -> Alcotest.fail "connection closed before the response");
  (match Wire.recv_response fd with
   | Some Wire.Bye | None -> ()
   | Some _ -> Alcotest.fail "expected Bye after drain"
   | exception Wire.Codec Wire.Truncated -> ());
  Thread.join stopper;
  Unix.close fd;
  (* stop is idempotent. *)
  Server.stop server

let stopped_server_refuses () =
  let server = Server.start factory in
  let port = Server.port server in
  Server.stop server;
  match Client.connect ~port () with
  | c ->
    Client.close c;
    Alcotest.fail "stopped server accepted a connection"
  | exception _ -> ()

let () =
  Alcotest.run "net"
    [
      ( "identity",
        [
          Alcotest.test_case "XMark workload over the wire" `Quick
            workload_identical;
          Alcotest.test_case "windowed fetch reassembles rows" `Quick
            rows_identical_windowed;
          Alcotest.test_case "typed row accessors" `Quick typed_rows;
        ] );
      ( "concurrency",
        [ Alcotest.test_case "8 threads through a 4-conn pool" `Quick
            concurrent_pool ] );
      ( "containment",
        [
          Alcotest.test_case "query errors keep the connection" `Quick
            query_error_keeps_connection;
          Alcotest.test_case "malformed frame kills only its connection" `Quick
            malformed_frame_isolated;
          Alcotest.test_case "abrupt disconnect mid-request" `Quick
            abrupt_disconnect_isolated;
        ] );
      ( "admission",
        [
          Alcotest.test_case "connection-level" `Quick connection_admission;
          Alcotest.test_case "request-level" `Quick request_admission;
        ] );
      ( "retries",
        [
          Alcotest.test_case "typed exhaustion on a dead port" `Quick
            retries_exhausted_typed;
          Alcotest.test_case "backoff reaches a late server" `Quick
            retry_reaches_late_server;
          Alcotest.test_case "non-transient errors surface at once" `Quick
            non_transient_not_retried;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "drains in-flight requests" `Quick shutdown_drains;
          Alcotest.test_case "stopped server refuses" `Quick
            stopped_server_refuses;
        ] );
    ]

(* ppfx — PPF-based XPath execution on a relational backend.

   Subcommands:
     translate  print the SQL a query translates to
     run        execute a query against a document through an engine
     explain    show the relational plan for a translated query
     stats      show the relational store a document shreds into
     gen        generate XMark- or DBLP-like synthetic documents
     serve      wire-protocol TCP server over worker-domain sessions
                (--stdio: one-shot batch through an in-process session)
     query      run one query against a running ppfx server *)

open Cmdliner

module Doc = Ppfx_xml.Doc
module Graph = Ppfx_schema.Graph
module Loader = Ppfx_shred.Loader
module Edge = Ppfx_shred.Edge
module Translate = Ppfx_translate.Translate
module Edge_translate = Ppfx_translate.Edge_translate
module Accelerator = Ppfx_baselines.Accelerator
module Monet_sim = Ppfx_baselines.Monet_sim
module Engine = Ppfx_minidb.Engine
module Sql = Ppfx_minidb.Sql
module Value = Ppfx_minidb.Value
module Session = Ppfx_service.Session
module Batch = Ppfx_service.Batch
module Metrics = Ppfx_service.Metrics
module Cluster = Ppfx_cluster.Cluster
module Server = Ppfx_net.Server
module Update = Ppfx_update.Update
module Wstore = Ppfx_wal.Store
module Client = Ppfx_client.Client

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_doc path = Doc.of_tree (Ppfx_xml.Parser.parse (read_file path))

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let doc_arg =
  let doc = "XML document (the schema is inferred from it unless --schema is given)." in
  Arg.(required & opt (some file) None & info [ "d"; "doc" ] ~docv:"FILE" ~doc)

let schema_arg =
  let doc = "XML Schema (XSD) file describing the documents." in
  Arg.(value & opt (some file) None & info [ "schema" ] ~docv:"XSD" ~doc)

let schema_of ~schema_path doc =
  match schema_path with
  | None -> Graph.infer doc
  | Some path ->
    (match Ppfx_schema.Xsd.parse (read_file path) with
     | s -> s
     | exception Ppfx_schema.Xsd.Error msg ->
       Printf.eprintf "XSD error: %s\n" msg;
       exit 1)

let query_arg =
  let doc = "XPath query." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"XPATH" ~doc)

let engine_arg =
  let doc =
    "Engine: ppf (schema-aware PPF SQL), edge (schema-oblivious PPF SQL), accel \
     (XPath Accelerator SQL), monet (column-store simulator), eval (in-memory \
     reference evaluator)."
  in
  Arg.(
    value
    & opt (enum [ "ppf", `Ppf; "edge", `Edge; "accel", `Accel; "monet", `Monet; "eval", `Eval ]) `Ppf
    & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc)

let no_opt_arg =
  let doc = "Disable the Section 4.5 path-filter omission." in
  Arg.(value & flag & info [ "no-filter-omission" ] ~doc)

let handle_errors f =
  try f () with
  | Ppfx_xml.Parser.Error { line; column; message } ->
    Printf.eprintf "XML parse error at %d:%d: %s\n" line column message;
    exit 1
  | Ppfx_xpath.Parser.Error { position; message } ->
    Printf.eprintf "XPath parse error at offset %d: %s\n" position message;
    exit 1
  | Translate.Unsupported msg | Edge_translate.Unsupported msg ->
    Printf.eprintf "not translatable: %s\n" msg;
    exit 1
  | Loader.Rejected msg ->
    Printf.eprintf "document rejected: %s\n" msg;
    exit 1
  | Update.Update_error msg ->
    Printf.eprintf "update error: %s\n" msg;
    exit 1

(* ------------------------------------------------------------------ *)
(* translate                                                           *)
(* ------------------------------------------------------------------ *)

let translate_cmd =
  let run doc_path schema_path query engine no_opt =
    handle_errors @@ fun () ->
    let expr = Ppfx_xpath.Parser.parse query in
    let stmt =
      match engine with
      | `Ppf ->
        let doc = load_doc doc_path in
        let schema = schema_of ~schema_path doc in
        let mapping = Ppfx_shred.Mapping.of_schema schema in
        let options =
          if no_opt then { Translate.default_options with omit_path_filters = false }
          else Translate.default_options
        in
        Translate.translate (Translate.create ~options mapping) expr
      | `Edge -> Edge_translate.translate expr
      | `Accel -> Accelerator.translate expr
      | `Monet | `Eval ->
        Printf.eprintf "engine has no SQL translation; use ppf, edge or accel\n";
        exit 1
    in
    match stmt with
    | None -> print_endline "-- provably empty result"
    | Some stmt -> print_endline (Sql.to_string stmt)
  in
  let term =
    Term.(const run $ doc_arg $ schema_arg $ query_arg $ engine_arg $ no_opt_arg)
  in
  Cmd.v (Cmd.info "translate" ~doc:"Print the SQL a query translates to.") term

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let run doc_path schema_path query engine =
    handle_errors @@ fun () ->
    let doc = load_doc doc_path in
    let expr = Ppfx_xpath.Parser.parse query in
    let ids =
      match engine with
      | `Eval -> Ppfx_xpath.Eval.select_elements doc expr
      | `Monet -> Monet_sim.run (Monet_sim.of_doc doc) expr
      | `Ppf ->
        let store = Loader.shred (schema_of ~schema_path doc) doc in
        (match Translate.translate (Translate.create store.Loader.mapping) expr with
         | None -> []
         | Some stmt -> Translate.result_ids (Engine.run store.Loader.db stmt))
      | `Edge ->
        let store = Edge.shred doc in
        (match Edge_translate.translate expr with
         | None -> []
         | Some stmt -> Edge_translate.result_ids (Engine.run store.Edge.db stmt))
      | `Accel ->
        let store = Accelerator.shred doc in
        (match Accelerator.translate expr with
         | None -> []
         | Some stmt -> Accelerator.result_ids (Engine.run store.Accelerator.db stmt))
    in
    Printf.printf "%d nodes\n" (List.length ids);
    List.iter
      (fun id ->
        let e = Doc.element doc id in
        let preview =
          let s = e.Doc.string_value in
          if String.length s > 60 then String.sub s 0 60 ^ "..." else s
        in
        Printf.printf "  %d  %-10s %-24s %s\n" id e.Doc.tag e.Doc.path preview)
      ids
  in
  let term = Term.(const run $ doc_arg $ schema_arg $ query_arg $ engine_arg) in
  Cmd.v (Cmd.info "run" ~doc:"Execute a query against a document.") term

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let run doc_path schema_path query =
    handle_errors @@ fun () ->
    let doc = load_doc doc_path in
    let store = Loader.shred (schema_of ~schema_path doc) doc in
    let expr = Ppfx_xpath.Parser.parse query in
    match Translate.translate (Translate.create store.Loader.mapping) expr with
    | None -> print_endline "-- provably empty result"
    | Some stmt ->
      print_endline (Sql.to_string stmt);
      print_endline "--";
      print_string (Engine.explain store.Loader.db stmt);
      print_endline "--";
      let result, profiles, stats = Engine.run_profiled store.Loader.db stmt in
      List.iter
        (fun (p : Engine.step_profile) ->
          Printf.printf "step %s(%s): %s — examined %d, passed %d, %.6fs\n"
            p.Engine.table p.Engine.alias p.Engine.access p.Engine.examined
            p.Engine.passed p.Engine.seconds)
        profiles;
      Printf.printf
        "scanned %d, probed %d, emitted %d, plan regex evals %d, exec regex evals %d, \
         dfa execs %d, hash builds %d, reductions %d\n"
        stats.Engine.rows_scanned stats.Engine.rows_probed stats.Engine.rows_emitted
        stats.Engine.regex_plan_evals stats.Engine.regex_exec_evals
        stats.Engine.dfa_execs stats.Engine.hash_builds stats.Engine.reductions;
      Printf.printf
        "merge probes %d, merge steps %d, merge backtracks %d, partitions scanned %d, \
         partitions pruned %d, peak bytes %d\n"
        stats.Engine.merge_probes stats.Engine.merge_steps
        stats.Engine.merge_backtracks stats.Engine.partitions_scanned
        stats.Engine.partitions_pruned stats.Engine.peak_bytes;
      Printf.printf
        "content probes %d, content candidates %d, content verified %d\n"
        stats.Engine.content_probes stats.Engine.content_candidates
        stats.Engine.content_verified;
      Printf.printf "%d result rows\n" (List.length result.Engine.rows)
  in
  let term = Term.(const run $ doc_arg $ schema_arg $ query_arg) in
  Cmd.v (Cmd.info "explain" ~doc:"Show the relational plan for a query.") term

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_cmd =
  let run doc_path schema_path =
    handle_errors @@ fun () ->
    let doc = load_doc doc_path in
    let schema = schema_of ~schema_path doc in
    Printf.printf "%d elements, %d distinct root-to-node paths\n\n" (Doc.size doc)
      (List.length (Doc.distinct_paths doc));
    print_endline "schema marking (Section 4.5):";
    List.iter
      (fun def ->
        let marking =
          match Graph.classification schema def with
          | Graph.Unique_path _ -> "U-P"
          | Graph.Finite_paths ps -> Printf.sprintf "F-P(%d)" (List.length ps)
          | Graph.Infinite_paths -> "I-P"
        in
        Printf.printf "  %-20s %s\n" def.Graph.name marking)
      (Graph.defs schema);
    let store = Loader.shred schema doc in
    print_endline "\nrelational store:";
    Format.printf "%a@." Ppfx_minidb.Database.pp_stats store.Loader.db
  in
  let term = Term.(const run $ doc_arg $ schema_arg) in
  Cmd.v (Cmd.info "stats" ~doc:"Show the relational store a document shreds into.") term

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let gen_cmd =
  let kind_arg =
    Arg.(
      required
      & pos 0 (some (enum [ "xmark", `Xmark; "dblp", `Dblp ])) None
      & info [] ~docv:"KIND" ~doc:"xmark or dblp")
  in
  let scale_arg =
    Arg.(value & opt int 10 & info [ "s"; "scale" ] ~docv:"N"
           ~doc:"Items per region (xmark) or entries (dblp).")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file (stdout if omitted).")
  in
  let run kind scale seed out =
    let tree =
      match kind with
      | `Xmark -> Ppfx_workloads.Xmark.generate ~seed ~items_per_region:scale ()
      | `Dblp -> Ppfx_workloads.Dblp.generate ~seed ~entries:scale ()
    in
    match out with
    | None -> Ppfx_xml.Printer.to_channel ~indent:2 stdout tree
    | Some path ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Ppfx_xml.Printer.to_channel ~indent:2 oc tree);
      Printf.printf "wrote %s (%d elements)\n" path (Ppfx_xml.Tree.count_elements tree)
  in
  let term = Term.(const run $ kind_arg $ scale_arg $ seed_arg $ out_arg) in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic benchmark document.") term

(* ------------------------------------------------------------------ *)
(* shred: persist a store                                              *)
(* ------------------------------------------------------------------ *)

let store_type_arg =
  Arg.(
    value
    & opt (enum [ "schema", `Schema; "edge", `Edge; "accel", `Accel ]) `Schema
    & info [ "store" ] ~docv:"STORE"
        ~doc:"Which shredded store to build: schema (schema-aware), edge, accel.")

let build_store ~schema_path ~store doc =
  match store with
  | `Schema -> (Loader.shred (schema_of ~schema_path doc) doc).Loader.db
  | `Edge -> (Edge.shred doc).Edge.db
  | `Accel -> (Accelerator.shred doc).Accelerator.db

let shred_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output database file.")
  in
  let run doc_path schema_path store out =
    handle_errors @@ fun () ->
    let doc = load_doc doc_path in
    let db = build_store ~schema_path ~store doc in
    Ppfx_minidb.Codec.save out db;
    Printf.printf "wrote %s (%d tables, %d rows)\n" out
      (List.length (Ppfx_minidb.Database.tables db))
      (Ppfx_minidb.Database.total_rows db)
  in
  let term = Term.(const run $ doc_arg $ schema_arg $ store_type_arg $ out_arg) in
  Cmd.v
    (Cmd.info "shred" ~doc:"Shred a document and persist the relational store.")
    term

(* ------------------------------------------------------------------ *)
(* sql                                                                 *)
(* ------------------------------------------------------------------ *)

let sql_cmd =
  let db_arg =
    Arg.(value & opt (some file) None & info [ "db" ] ~docv:"FILE"
           ~doc:"A persisted store file produced by the shred subcommand \
                 (alternative to --doc).")
  in
  let doc_opt_arg =
    Arg.(value & opt (some file) None & info [ "d"; "doc" ] ~docv:"FILE"
           ~doc:"XML document to shred on the fly.")
  in
  let sql_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"SQL statement.")
  in
  let run doc_path db_path store sql =
    handle_errors @@ fun () ->
    let db =
      match db_path, doc_path with
      | Some path, _ ->
        (match Ppfx_minidb.Codec.load_result path with
         | Ok db -> db
         | Error e ->
           Printf.eprintf "cannot load store: %s\n"
             (Ppfx_minidb.Codec.error_to_string e);
           exit 1)
      | None, Some doc_path ->
        build_store ~schema_path:None ~store (load_doc doc_path)
      | None, None ->
        Printf.eprintf "one of --doc or --db is required\n";
        exit 1
    in
    match Ppfx_minidb.Sql_parser.parse sql with
    | exception Ppfx_minidb.Sql_parser.Error { position; message } ->
      Printf.eprintf "SQL parse error at offset %d: %s\n" position message;
      exit 1
    | stmt ->
      (match Engine.run db stmt with
       | exception Engine.Runtime_error msg ->
         Printf.eprintf "runtime error: %s\n" msg;
         exit 1
       | result ->
         print_endline (String.concat " | " result.Engine.columns);
         List.iter
           (fun row ->
             print_endline
               (String.concat " | "
                  (Array.to_list (Array.map Value.to_string row))))
           result.Engine.rows;
         Printf.printf "(%d rows)\n" (List.length result.Engine.rows))
  in
  let term = Term.(const run $ doc_opt_arg $ db_arg $ store_type_arg $ sql_arg) in
  Cmd.v
    (Cmd.info "sql" ~doc:"Run a SQL statement directly against a shredded document.")
    term

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let queries_arg =
    Arg.(value & opt (some file) None & info [ "q"; "queries" ] ~docv:"FILE"
           ~doc:"File with one XPath query per line ('#' starts a comment); \
                 stdin if omitted.")
  in
  let cache_arg =
    Arg.(value & opt int 256 & info [ "cache" ] ~docv:"N"
           ~doc:"Prepared-query LRU cache capacity.")
  in
  let repeat_arg =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Serve the whole batch N times through the same session; \
                 rounds after the first hit the translation/plan cache.")
  in
  let no_metrics_arg =
    Arg.(value & flag & info [ "no-metrics" ] ~doc:"Suppress the serving-metrics dump.")
  in
  let shards_arg =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
           ~doc:"Partition the store into N subtree shards and execute \
                 partitionable queries scatter-gather on a domain pool; \
                 order-axis and counting queries fall back to the unsharded \
                 store. 1 (default) serves from a single store.")
  in
  let pool_arg =
    Arg.(value & opt (some int) None & info [ "pool" ] ~docv:"N"
           ~doc:"Worker domains for --shards (default: one per shard; 0 runs \
                 shard tasks inline).")
  in
  let stdio_arg =
    Arg.(value & flag & info [ "stdio" ]
           ~doc:"Serve a batch of queries from --queries/stdin through one \
                 in-process session and exit (the pre-network REPL behavior) \
                 instead of listening on TCP.")
  in
  let port_arg =
    Arg.(value & opt int 7464 & info [ "p"; "port" ] ~docv:"PORT"
           ~doc:"TCP port to listen on (0 picks an ephemeral port).")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
           ~doc:"Bind address.")
  in
  let workers_arg =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
           ~doc:"Executor worker domains; each owns a private session (plan \
                 cache included) over the shared store.")
  in
  let max_conns_arg =
    Arg.(value & opt int 64 & info [ "max-conns" ] ~docv:"N"
           ~doc:"Admission bound on concurrent connections; connections \
                 beyond it are refused with an admission error frame.")
  in
  let queue_depth_arg =
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N"
           ~doc:"Admission bound on queued requests; requests arriving over \
                 a full dispatch queue are answered with an admission error.")
  in
  let window_arg =
    Arg.(value & opt int 512 & info [ "window" ] ~docv:"ROWS"
           ~doc:"Server-side cap on rows per response frame; larger results \
                 stream through Fetch.")
  in
  let data_dir_arg =
    Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR"
           ~doc:"Durable store directory: every mutation is write-ahead \
                 logged (appended and fsynced per --durability) before it is \
                 acked, and the stores checkpoint periodically. When DIR \
                 already holds a store, the server cold-starts from the \
                 newest checkpoint plus the log — no --doc and no \
                 re-shredding.")
  in
  let durability_arg =
    Arg.(value & opt string "fsync" & info [ "durability" ] ~docv:"POLICY"
           ~doc:"WAL fsync policy for --data-dir: off (never fsync — the OS \
                 decides), fsync (every append — an acked mutation survives \
                 any crash), or batch[:N] (group commit, fsync every N \
                 appends; N defaults to 32).")
  in
  let doc_serve_arg =
    Arg.(value & opt (some file) None & info [ "d"; "doc" ] ~docv:"FILE"
           ~doc:"XML document to serve. Required unless --data-dir holds a \
                 recoverable store (then it is ignored: the store already \
                 contains the data).")
  in
  let serve_stdio ~queries_path ~cache ~repeat ~shards ~pool ~options ~schema
      ~no_metrics ~tree doc =
    let queries =
      match queries_path with
      | Some path -> Batch.parse_queries (read_file path)
      | None -> Batch.read_queries stdin
    in
    let serve_rounds run_ids metrics shard_metrics =
      for round = 1 to max 1 repeat do
        if repeat > 1 then Printf.printf "-- round %d\n" round;
        List.iter
          (fun (o : Batch.outcome) ->
            match o.Batch.result with
            | Ok ids ->
              Printf.printf "%6d nodes %10.3f ms  %s\n" (List.length ids)
                (1e3 *. o.Batch.seconds) o.Batch.query
            | Error msg ->
              Printf.printf " ERROR %10.3f ms  %s  -- %s\n" (1e3 *. o.Batch.seconds)
                o.Batch.query msg)
          (Batch.run_with run_ids queries)
      done;
      if not no_metrics then begin
        print_newline ();
        print_string (Metrics.dump metrics);
        Array.iteri
          (fun s m ->
            Printf.printf "\n-- shard %d --\n" s;
            print_string (Metrics.dump m))
          shard_metrics
      end
    in
    if shards = 1 then begin
      let session = Session.of_doc ~cache_capacity:cache ~options ~schema doc in
      serve_rounds (Session.run_ids session) (Session.metrics session) [||]
    end
    else
      Cluster.with_cluster ?pool_size:pool ~cache_capacity:cache ~options ~shards
        schema [ tree ]
        (fun cluster ->
          serve_rounds (Cluster.run_ids cluster) (Cluster.metrics cluster)
            (Cluster.shard_metrics cluster))
  in
  let serve_tcp ~host ~port ~workers ~max_conns ~queue_depth ~window ~cache
      ~shards ~pool ~options ~no_metrics ~data_dir ~durability ~load_source () =
    let start_and_wait ?(attach = fun _ -> ()) ?(on_stop = fun () -> ())
        ~shards factory =
      let config =
        { Server.default_config with
          host; port; workers;
          max_connections = max_conns;
          queue_depth;
          fetch_window = window;
          shards }
      in
      let server = Server.start ~config factory in
      attach server;
      Printf.printf
        "ppfx serving on %s:%d (%d workers, %d shards) — Ctrl-C to stop\n%!"
        host (Server.port server) workers shards;
      let stop_requested = Atomic.make false in
      let request_stop _ = Atomic.set stop_requested true in
      Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
      while not (Atomic.get stop_requested) do
        try Unix.sleepf 0.2
        with Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      print_endline "shutting down — draining in-flight requests...";
      Server.stop server;
      (* The drain finished: every acked mutation is appended and
         committed. Flush, checkpoint and mark the durable stores clean
         before exiting. *)
      on_stop ();
      if not no_metrics then begin
        print_newline ();
        print_string (Metrics.dump (Server.metrics server))
      end
    in
    if shards = 1 then begin
      let store_dir dir = Filename.concat dir "store" in
      (* One shared write path (shadow forest + commit lock) behind the
         worker domains' private read sessions: Update requests stage
         through it, and the store's fine-grained commit log lets each
         session retain footprint-disjoint prepared plans. *)
      let serve_single ?wal u store =
        let write_path = (Mutex.create (), u) in
        start_and_wait ~shards:1
          ~attach:(fun server ->
            Option.iter
              (fun w -> Wstore.set_metrics w (Server.metrics server))
              wal)
          ~on_stop:(fun () ->
            Option.iter
              (fun w ->
                Wstore.close_clean w ~db:(Update.db u)
                  ~meta:(Server.store_meta u))
              wal)
          (fun () ->
            Server.session_executor ~update:write_path ?wal
              (Session.create ~cache_capacity:cache ~options store))
      in
      match data_dir with
      | Some dir when Wstore.exists ~dir:(store_dir dir) ->
        (match Wstore.recover ~durability ~dir:(store_dir dir) () with
         | Error msg ->
           Printf.eprintf "cannot recover %s: %s\n" (store_dir dir) msg;
           exit 1
         | Ok r ->
           (match
              Wstore.rebuild_full ~db:r.Wstore.db ~meta:r.Wstore.meta
                r.Wstore.records
            with
            | Error msg ->
              Printf.eprintf "cannot replay %s: %s\n" (store_dir dir) msg;
              exit 1
            | Ok u ->
              let rv = r.Wstore.recovery in
              if rv.Wstore.clean then
                Printf.printf "clean start from %s (replay scan skipped)\n%!"
                  (store_dir dir)
              else
                Printf.printf
                  "recovered %s: %d records replayed, %d torn bytes truncated\n%!"
                  (store_dir dir) rv.Wstore.replayed rv.Wstore.truncated_bytes;
              serve_single ~wal:r.Wstore.store u (Update.store u)))
      | Some dir ->
        let tree, doc, schema = load_source () in
        let store = Loader.shred schema doc in
        let u = Update.of_store store [ tree ] in
        let w =
          Wstore.init ~durability ~dir:(store_dir dir) ~db:store.Loader.db
            ~meta:(Server.store_meta u) ()
        in
        serve_single ~wal:w u store
      | None ->
        let tree, doc, schema = load_source () in
        let store = Loader.shred schema doc in
        serve_single (Update.of_store store [ tree ]) store
    end
    else begin
      match data_dir with
      | Some dir when Wstore.exists ~dir:(Filename.concat dir "full") ->
        (match
           Cluster.open_durable ~durability ?pool_size:pool
             ~cache_capacity:cache ~options ~data_dir:dir ()
         with
         | Error msg ->
           Printf.eprintf "cannot recover cluster %s: %s\n" dir msg;
           exit 1
         | Ok cluster ->
           let n = Cluster.shards cluster in
           if n <> shards then
             Printf.printf "note: %s holds %d shards; ignoring --shards %d\n"
               dir n shards;
           Printf.printf "recovered cluster %s (%d shards)\n%!" dir n;
           Fun.protect
             ~finally:(fun () -> Cluster.close cluster)
             (fun () ->
               let lock = Mutex.create () in
               start_and_wait ~shards:n (fun () ->
                   Server.cluster_executor lock cluster)))
      | _ ->
        let tree, _doc, schema = load_source () in
        Cluster.with_cluster ?pool_size:pool ~cache_capacity:cache ~options
          ~shards schema [ tree ]
          (fun cluster ->
            (match data_dir with
             | Some dir ->
               Cluster.make_durable ~durability ~data_dir:dir cluster
             | None -> ());
            let lock = Mutex.create () in
            start_and_wait ~shards (fun () ->
                Server.cluster_executor lock cluster))
    end
  in
  let run doc_path schema_path queries_path cache repeat shards pool no_opt
      no_metrics stdio host port workers max_conns queue_depth window data_dir
      durability =
    handle_errors @@ fun () ->
    if cache < 1 then (
      Printf.eprintf "--cache must be at least 1 (got %d)\n" cache;
      exit 1);
    if shards < 1 then (
      Printf.eprintf "--shards must be at least 1 (got %d)\n" shards;
      exit 1);
    if workers < 1 then (
      Printf.eprintf "--workers must be at least 1 (got %d)\n" workers;
      exit 1);
    if window < 1 then (
      Printf.eprintf "--window must be at least 1 (got %d)\n" window;
      exit 1);
    let durability =
      match Wstore.durability_of_string durability with
      | Ok d -> d
      | Error msg ->
        Printf.eprintf "--durability: %s\n" msg;
        exit 1
    in
    let options =
      if no_opt then { Translate.default_options with omit_path_filters = false }
      else Translate.default_options
    in
    let load_source () =
      match doc_path with
      | None ->
        Printf.eprintf
          "--doc is required (no recoverable store under --data-dir)\n";
        exit 1
      | Some path ->
        let tree = Ppfx_xml.Parser.parse (read_file path) in
        let doc = Doc.of_tree tree in
        (tree, doc, schema_of ~schema_path doc)
    in
    if stdio then begin
      if data_dir <> None then (
        Printf.eprintf "--data-dir requires the TCP server (drop --stdio)\n";
        exit 1);
      let tree, doc, schema = load_source () in
      serve_stdio ~queries_path ~cache ~repeat ~shards ~pool ~options ~schema
        ~no_metrics ~tree doc
    end
    else
      serve_tcp ~host ~port ~workers ~max_conns ~queue_depth ~window ~cache
        ~shards ~pool ~options ~no_metrics ~data_dir ~durability ~load_source ()
  in
  let term =
    Term.(
      const run $ doc_serve_arg $ schema_arg $ queries_arg $ cache_arg
      $ repeat_arg $ shards_arg $ pool_arg $ no_opt_arg $ no_metrics_arg
      $ stdio_arg $ host_arg $ port_arg $ workers_arg $ max_conns_arg
      $ queue_depth_arg $ window_arg $ data_dir_arg $ durability_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve prepared XPath queries over the ppfx wire protocol: listen \
             on TCP (--port), answer Prepare/Execute/Fetch requests from a \
             pool of worker domains each owning a session (translation/plan \
             cache) over the shared store, with admission control \
             (--max-conns, --queue-depth) and windowed result streaming \
             (--window). With --shards N queries execute scatter-gather \
             across a shard domain pool. --stdio instead answers a batch of \
             queries from stdin/--queries through one in-process session and \
             exits, dumping serving metrics.")
    term

(* ------------------------------------------------------------------ *)
(* update: one-shot subtree mutation                                   *)
(* ------------------------------------------------------------------ *)

let update_cmd =
  let kind_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ "insert", `Insert; "delete", `Delete; "replace", `Replace;
                  "set-attr", `Set_attr; "set-text", `Set_text ]))
          None
      & info [] ~docv:"OP"
          ~doc:"insert, delete, replace, set-attr or set-text.")
  in
  let target_arg =
    Arg.(value & opt (some int) None & info [ "target" ] ~docv:"ID"
           ~doc:"Element id the mutation applies to (delete, replace, \
                 set-attr, set-text).")
  in
  let parent_arg =
    Arg.(value & opt (some int) None & info [ "parent" ] ~docv:"ID"
           ~doc:"Parent element id (insert).")
  in
  let before_arg =
    Arg.(value & opt (some int) None & info [ "before" ] ~docv:"ID"
           ~doc:"Existing child element to insert immediately before \
                 (insert; appended as last child if omitted).")
  in
  let fragment_arg =
    Arg.(value & opt (some string) None & info [ "fragment" ] ~docv:"XML"
           ~doc:"XML fragment to splice (insert, replace). Must conform \
                 to the schema at the target position.")
  in
  let name_arg =
    Arg.(value & opt (some string) None & info [ "name" ] ~docv:"NAME"
           ~doc:"Attribute name (set-attr).")
  in
  let value_arg =
    Arg.(value & opt (some string) None & info [ "value" ] ~docv:"VALUE"
           ~doc:"Attribute value (set-attr; omitting it removes the \
                 attribute).")
  in
  let text_arg =
    Arg.(value & opt (some string) None & info [ "text" ] ~docv:"TEXT"
           ~doc:"New direct text content (set-text).")
  in
  let query_opt_arg =
    Arg.(value & opt (some string) None & info [ "query" ] ~docv:"XPATH"
           ~doc:"XPath query to run against the mutated store afterwards.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the mutated document back out as XML.")
  in
  let port_arg =
    Arg.(value & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT"
           ~doc:"Send the mutation to a running ppfx server over the wire \
                 protocol instead of mutating a local document (--doc is \
                 not needed then).")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
           ~doc:"Server address (with --port).")
  in
  let run doc_path schema_path kind target parent before fragment name value
      text query out host port =
    handle_errors @@ fun () ->
    let need what = function
      | Some v -> v
      | None ->
        Printf.eprintf "--%s is required for this operation\n" what;
        exit 1
    in
    match port with
    | Some port ->
      (match Client.connect ~host ~port () with
       | exception Unix.Unix_error (e, _, _) ->
         Printf.eprintf "cannot connect to %s:%d: %s\n" host port
           (Unix.error_message e);
         exit 1
       | c ->
         Fun.protect
           ~finally:(fun () -> Client.close c)
           (fun () ->
             try
               let o =
                 match kind with
                 | `Insert ->
                   Client.insert c ~parent:(need "parent" parent) ?before
                     (need "fragment" fragment)
                 | `Delete -> Client.delete c ~target:(need "target" target)
                 | `Replace ->
                   Client.replace c ~target:(need "target" target)
                     (need "fragment" fragment)
                 | `Set_attr ->
                   Client.set_attribute c ~target:(need "target" target)
                     ~name:(need "name" name) value
                 | `Set_text ->
                   Client.set_text c ~target:(need "target" target)
                     (need "text" text)
               in
               Printf.printf
                 "rows: +%d inserted, %d updated, -%d deleted; paths: +%d/-%d\n"
                 o.Client.inserted o.Client.updated o.Client.deleted
                 o.Client.new_paths o.Client.dead_paths;
               match query with
               | None -> ()
               | Some q ->
                 let ids = Client.run_ids c q in
                 Printf.printf "%d nodes: %s\n" (List.length ids)
                   (String.concat " " (List.map string_of_int ids))
             with
             | Client.Server_error { code; message } ->
               Printf.eprintf "server error (%s): %s\n"
                 (Ppfx_net.Wire.error_code_to_string code) message;
               exit 1
             | Client.Protocol_error msg ->
               Printf.eprintf "protocol error: %s\n" msg;
               exit 1))
    | None ->
    let doc_path = need "doc" doc_path in
    let frag () = Ppfx_xml.Parser.parse (need "fragment" fragment) in
    let op =
      match kind with
      | `Insert ->
        Update.Insert_subtree
          { parent = need "parent" parent; before; fragment = frag () }
      | `Delete -> Update.Delete_subtree { target = need "target" target }
      | `Replace ->
        Update.Replace_subtree
          { target = need "target" target; fragment = frag () }
      | `Set_attr ->
        Update.Set_attribute
          { target = need "target" target; name = need "name" name; value }
      | `Set_text ->
        Update.Set_text { target = need "target" target; text = need "text" text }
    in
    let tree = Ppfx_xml.Parser.parse (read_file doc_path) in
    let doc = Doc.of_tree tree in
    let schema = schema_of ~schema_path doc in
    let u = Update.create schema [ tree ] in
    let o = Update.exec u op in
    Printf.printf
      "rows: +%d inserted, %d updated, -%d deleted; paths: +%d/-%d; %d live \
       elements, max label %d bytes\n"
      o.Update.inserted o.Update.updated o.Update.deleted o.Update.new_paths
      o.Update.dead_paths (Update.size u)
      (Update.max_label_len u);
    (match query with
     | None -> ()
     | Some q ->
       let session = Session.create (Update.store u) in
       let ids = Session.run_ids session q in
       Printf.printf "%d nodes: %s\n" (List.length ids)
         (String.concat " " (List.map string_of_int ids)));
    match out with
    | None -> ()
    | Some path ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          List.iter
            (fun t -> Ppfx_xml.Printer.to_channel ~indent:2 oc t)
            (Update.current_trees u));
      Printf.printf "wrote %s\n" path
  in
  let doc_update_arg =
    Arg.(value & opt (some file) None & info [ "d"; "doc" ] ~docv:"FILE"
           ~doc:"XML document to mutate locally (required without --port).")
  in
  let term =
    Term.(
      const run $ doc_update_arg $ schema_arg $ kind_arg $ target_arg
      $ parent_arg $ before_arg $ fragment_arg $ name_arg $ value_arg
      $ text_arg $ query_opt_arg $ out_arg $ host_arg $ port_arg)
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:"Apply one subtree mutation to a document's relational store \
             without re-shredding: fragments get ORDPATH caret labels \
             between their siblings, the Paths dimension is maintained \
             incrementally, and the commit is logged fine-grained for \
             prepared-plan revalidation. Prints the changeset row counts; \
             --query then runs an XPath query against the mutated store, \
             --output writes the mutated document back out.")
    term

(* ------------------------------------------------------------------ *)
(* query: wire-protocol client                                         *)
(* ------------------------------------------------------------------ *)

let query_cmd =
  let port_arg =
    Arg.(required & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT"
           ~doc:"Port of a running ppfx server.")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
           ~doc:"Server address.")
  in
  let run host port query =
    match Ppfx_client.Client.connect ~host ~port () with
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "cannot connect to %s:%d: %s\n" host port (Unix.error_message e);
      exit 1
    | c ->
      Fun.protect
        ~finally:(fun () -> Ppfx_client.Client.close c)
        (fun () ->
          match Ppfx_client.Client.run_ids c query with
          | ids ->
            Printf.printf "%d nodes\n" (List.length ids);
            List.iter (fun id -> Printf.printf "  %d\n" id) ids
          | exception Ppfx_client.Client.Server_error { code; message } ->
            Printf.eprintf "server error (%s): %s\n"
              (Ppfx_net.Wire.error_code_to_string code) message;
            exit 1
          | exception Ppfx_client.Client.Protocol_error msg ->
            Printf.eprintf "protocol error: %s\n" msg;
            exit 1)
  in
  let term = Term.(const run $ host_arg $ port_arg $ query_arg) in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Run one XPath query against a running ppfx server over the wire \
             protocol and print the matching element ids.")
    term

let () =
  let info =
    Cmd.info "ppfx" ~version:"1.0.0"
      ~doc:"PPF-based XPath execution on a relational backend (EDBT 2006 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ translate_cmd; run_cmd; explain_cmd; stats_cmd; gen_cmd; shred_cmd; sql_cmd;
            update_cmd; serve_cmd; query_cmd ]))

(* Benchmark harness reproducing every table and figure of the paper's
   evaluation (Section 5):

   - fig3     : schema-aware PPF vs schema-oblivious (Edge-like) PPF
                (paper Figure 3)
   - fig4     : PPF vs Edge-PPF vs MonetDB-sim vs Commercial vs XPath
                Accelerator on XMark, small and large documents (paper
                Figure 4 / Appendix C left table)
   - dblp     : the same comparison on the DBLP workload (Appendix C
                right table)
   - tables   : the example translations of paper Tables 1 and 3-6
   - ablation : PPF-specific design choices toggled off one at a time
                (Section 4.4/4.5 optimizations; beyond the paper)
   - sweep    : per-query engine series over growing document sizes
                (crossover study; beyond the paper)
   - extensions : twig joins (the paper's Section 7 future work) and the
                extended query set (string functions, count())
   - micro    : Bechamel micro-benchmarks of the substrate primitives,
                plus one Bechamel test per paper table
   - service  : cold vs warm prepared-query serving through ppfx_service
                (translation/plan cache; beyond the paper)
   - engine   : minidb optimizer pass on vs off — path-filter semi-join
                reduction and hash joins over warm prepared plans, with
                operator counters (beyond the paper)
   - net      : the wire-protocol TCP server under an open-loop load
                generator — latency percentiles from scheduled arrival
                at >= 32 concurrent connections, plus an overload point
                where admission control rejects (beyond the paper)
   - write    : lib/update subtree mutations — mutations/sec by subtree
                size, plan-cache retention under a 90/10 read/write mix
                (fine-grained vs whole-epoch invalidation), and ORDPATH
                label growth under adversarial front inserts (beyond
                the paper)
   - durability : lib/wal write-ahead logging — mutations/sec at each
                append policy (volatile / off / batch / fsync) and
                cold-start wall time from the data directory (WAL
                replay and clean checkpoint) vs re-shredding from
                source (beyond the paper)

   Usage: dune exec bench/main.exe -- [section ...] [options]
   Options: --small N (items/region, default 50)
            --large N (default 200)
            --dblp-entries N (default 3000)
            --reps N  (default 3, median is reported)
            --json    (also write BENCH_TRAJECTORY.json)
            --json-out FILE (choose the trajectory file name)  *)

module Doc = Ppfx_xml.Doc
module Graph = Ppfx_schema.Graph
module Loader = Ppfx_shred.Loader
module Edge = Ppfx_shred.Edge
module Translate = Ppfx_translate.Translate
module Edge_translate = Ppfx_translate.Edge_translate
module Accelerator = Ppfx_baselines.Accelerator
module Monet_sim = Ppfx_baselines.Monet_sim
module Commercial = Ppfx_baselines.Commercial
module Twig = Ppfx_baselines.Twig
module Engine = Ppfx_minidb.Engine
module Sql = Ppfx_minidb.Sql
module Xmark = Ppfx_workloads.Xmark
module Dblp = Ppfx_workloads.Dblp
module Xparser = Ppfx_xpath.Parser

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  mutable small : int;
  mutable large : int;
  mutable dblp_entries : int;
  mutable reps : int;
  mutable sections : string list;
  mutable json : string option;
}

let config =
  { small = 50; large = 200; dblp_entries = 3000; reps = 3; sections = []; json = None }

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--small" :: v :: rest ->
      config.small <- int_of_string v;
      go rest
    | "--large" :: v :: rest ->
      config.large <- int_of_string v;
      go rest
    | "--dblp-entries" :: v :: rest ->
      config.dblp_entries <- int_of_string v;
      go rest
    | "--reps" :: v :: rest ->
      config.reps <- int_of_string v;
      go rest
    | "--json" :: rest ->
      if config.json = None then config.json <- Some "BENCH_TRAJECTORY.json";
      go rest
    | "--json-out" :: v :: rest ->
      config.json <- Some v;
      go rest
    | section :: rest ->
      config.sections <- config.sections @ [ section ];
      go rest
  in
  go (List.tl (Array.to_list Sys.argv))

let wants section =
  config.sections = [] || List.mem section config.sections
  || List.mem "all" config.sections

(* ------------------------------------------------------------------ *)
(* Machine-readable trajectory (--json)                                *)
(* ------------------------------------------------------------------ *)

(* Every timed measurement is also appended to a record list when --json
   is given; the records are written as one JSON array at exit, so a run
   leaves a BENCH_*.json trajectory alongside the human-readable tables. *)

let current_section = ref ""

let json_records : string list ref = ref []

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let record ?extra ~dataset ~query ~engine ~nodes ~seconds () =
  if config.json <> None then
    json_records :=
      Printf.sprintf
        "{\"section\":\"%s\",\"dataset\":\"%s\",\"query\":\"%s\",\"engine\":\"%s\",\
         \"nodes\":%s,\"seconds\":%s,\"reps\":%d%s}"
        (json_escape !current_section) (json_escape dataset) (json_escape query)
        (json_escape engine)
        (if nodes < 0 then "null" else string_of_int nodes)
        (if Float.is_nan seconds then "null" else Printf.sprintf "%.9f" seconds)
        config.reps
        (match extra with None -> "" | Some e -> "," ^ e)
      :: !json_records

let write_json () =
  match config.json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "[";
    List.iteri
      (fun i r -> output_string oc ((if i = 0 then "\n  " else ",\n  ") ^ r))
      (List.rev !json_records);
    output_string oc "\n]\n";
    close_out oc;
    Printf.printf "\nwrote %s (%d records)\n" path (List.length !json_records)

(* ------------------------------------------------------------------ *)
(* Stores                                                              *)
(* ------------------------------------------------------------------ *)

type stores = {
  label : string;
  doc : Doc.t;
  schema_store : Loader.t;
  edge_store : Edge.t;
  accel_store : Accelerator.t;
  monet : Monet_sim.t;
}

let build_stores label doc schema =
  {
    label;
    doc;
    schema_store = Loader.shred schema doc;
    edge_store = Edge.shred doc;
    accel_store = Accelerator.shred doc;
    monet = Monet_sim.of_doc doc;
  }

let xmark_stores scale =
  let doc = Doc.of_tree (Xmark.generate ~items_per_region:scale ()) in
  build_stores (Printf.sprintf "XMark (%d elements)" (Doc.size doc)) doc (Xmark.schema ())

let dblp_stores entries =
  let doc = Doc.of_tree (Dblp.generate ~entries ()) in
  build_stores (Printf.sprintf "DBLP (%d elements)" (Doc.size doc)) doc (Dblp.schema_of doc)

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

let median l =
  match List.sort compare l with
  | [] -> nan
  | l -> List.nth l (List.length l / 2)

let time_med f =
  let runs =
    List.init (max 1 config.reps) (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        Unix.gettimeofday () -. t0)
  in
  median runs

type engine_result = { nodes : int; seconds : float }

let na = { nodes = -1; seconds = nan }

let run_engine st engine query : engine_result =
  let expr = Xparser.parse query in
  let count run = { nodes = run (); seconds = time_med run } in
  match engine with
  | `Ppf ->
    let tr = Translate.create st.schema_store.Loader.mapping in
    count (fun () ->
        match Translate.translate tr expr with
        | None -> 0
        | Some stmt ->
          List.length (Translate.result_ids (Engine.run st.schema_store.Loader.db stmt)))
  | `Edge_ppf ->
    count (fun () ->
        match Edge_translate.translate expr with
        | None -> 0
        | Some stmt ->
          List.length (Edge_translate.result_ids (Engine.run st.edge_store.Edge.db stmt)))
  | `Accel ->
    count (fun () ->
        match Accelerator.translate expr with
        | None -> 0
        | Some stmt ->
          List.length
            (Accelerator.result_ids (Engine.run st.accel_store.Accelerator.db stmt)))
  | `Monet -> count (fun () -> List.length (Monet_sim.run st.monet expr))
  | `Commercial ->
    if not (Commercial.supports expr) then na
    else
      count (fun () ->
          match Commercial.translate st.schema_store.Loader.mapping expr with
          | None -> 0
          | Some stmt ->
            List.length (Commercial.result_ids (Engine.run st.schema_store.Loader.db stmt)))

let fmt_time r = if Float.is_nan r.seconds then "    N/A" else Printf.sprintf "%7.3f" r.seconds

(* ------------------------------------------------------------------ *)
(* Figure 4 / Appendix C                                               *)
(* ------------------------------------------------------------------ *)

let fig4_for st queries =
  Printf.printf "\n%s — median of %d runs, seconds\n" st.label config.reps;
  Printf.printf "%-5s %8s %8s %9s %12s %11s %8s\n" "query" "#nodes" "PPF" "Edge-PPF"
    "MonetDB-sim" "Commercial" "Accel";
  List.iter
    (fun (name, q) ->
      let ppf = run_engine st `Ppf q in
      let edge = run_engine st `Edge_ppf q in
      let monet = run_engine st `Monet q in
      let com = run_engine st `Commercial q in
      let accel = run_engine st `Accel q in
      List.iter
        (fun (engine, r) ->
          record ~dataset:st.label ~query:name ~engine ~nodes:r.nodes ~seconds:r.seconds ())
        [ "ppf", ppf; "edge-ppf", edge; "monet-sim", monet; "commercial", com;
          "accel", accel ];
      let agree =
        List.for_all (fun r -> r.nodes < 0 || r.nodes = ppf.nodes) [ edge; monet; com; accel ]
      in
      Printf.printf "%-5s %8d  %s  %s      %s     %s  %s%s\n" name ppf.nodes
        (fmt_time ppf) (fmt_time edge) (fmt_time monet) (fmt_time com) (fmt_time accel)
        (if agree then "" else "  <-- DISAGREEMENT");
      flush stdout)
    queries

let fig4 () =
  current_section := "fig4";
  print_endline "\n== Figure 4 / Appendix C: comparison of all engines on XMark ==";
  fig4_for (xmark_stores config.small) Xmark.queries;
  fig4_for (xmark_stores config.large) Xmark.queries

let dblp_table () =
  current_section := "dblp";
  print_endline "\n== Appendix C (right): comparison on DBLP ==";
  fig4_for (dblp_stores config.dblp_entries) Dblp.queries

(* ------------------------------------------------------------------ *)
(* Figure 3                                                            *)
(* ------------------------------------------------------------------ *)

let fig3_for st queries =
  Printf.printf "\n%s\n" st.label;
  Printf.printf "%-5s %8s %13s %14s %8s\n" "query" "#nodes" "schema-aware" "schema-obliv."
    "ratio";
  List.iter
    (fun (name, q) ->
      let ppf = run_engine st `Ppf q in
      let edge = run_engine st `Edge_ppf q in
      record ~dataset:st.label ~query:name ~engine:"ppf" ~nodes:ppf.nodes
        ~seconds:ppf.seconds ();
      record ~dataset:st.label ~query:name ~engine:"edge-ppf" ~nodes:edge.nodes
        ~seconds:edge.seconds ();
      Printf.printf "%-5s %8d  %s       %s      %6.1fx\n" name ppf.nodes (fmt_time ppf)
        (fmt_time edge)
        (edge.seconds /. ppf.seconds);
      flush stdout)
    queries

let fig3 () =
  current_section := "fig3";
  print_endline "\n== Figure 3: schema-aware vs schema-oblivious PPF-based processing ==";
  fig3_for (xmark_stores config.small) Xmark.queries;
  fig3_for (xmark_stores config.large) Xmark.queries;
  fig3_for (dblp_stores config.dblp_entries) Dblp.queries

(* ------------------------------------------------------------------ *)
(* Tables 1, 3-6: translation examples                                 *)
(* ------------------------------------------------------------------ *)

let fig1_schema () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.define b ~attrs:[ "x" ] "A" in
  let bb = Graph.Builder.define b "B" in
  let c = Graph.Builder.define b "C" in
  let d = Graph.Builder.define b ~text:true "D" in
  let e = Graph.Builder.define b "E" in
  let f = Graph.Builder.define b ~text:true "F" in
  let g = Graph.Builder.define b "G" in
  Graph.Builder.add_child b ~parent:a bb;
  Graph.Builder.add_child b ~parent:bb c;
  Graph.Builder.add_child b ~parent:bb g;
  Graph.Builder.add_child b ~parent:c d;
  Graph.Builder.add_child b ~parent:c e;
  Graph.Builder.add_child b ~parent:e f;
  Graph.Builder.add_child b ~parent:g g;
  Graph.Builder.finish b ~root:a

let tables () =
  print_endline "\n== Tables 1 and 3-6: translations over the paper's Figure 1 schema ==";
  let schema = fig1_schema () in
  let mapping = Ppfx_shred.Mapping.of_schema schema in
  let show ?options q =
    let tr = Translate.create ?options mapping in
    match Translate.translate tr (Xparser.parse q) with
    | Some stmt -> Printf.printf "\n%s\n  => %s\n" q (Sql.to_string stmt)
    | None -> Printf.printf "\n%s\n  => (provably empty)\n" q
  in
  print_endline "\n-- Table 1: forward/backward paths as regular expressions --";
  List.iter
    (fun (path, pattern) -> Printf.printf "%-36s %s\n" path pattern)
    [
      ( "//B/C",
        Ppfx_translate.Regex_of_path.forward ~anchored:false
          [ { desc = true; name = Some "B" }; { desc = false; name = Some "C" } ] );
      ( "/A/B//F",
        Ppfx_translate.Regex_of_path.forward ~anchored:true
          [
            { desc = false; name = Some "A" };
            { desc = false; name = Some "B" };
            { desc = true; name = Some "F" };
          ] );
      ( "//C/*/F",
        Ppfx_translate.Regex_of_path.forward ~anchored:false
          [
            { desc = true; name = Some "C" };
            { desc = false; name = None };
            { desc = false; name = Some "F" };
          ] );
      ( "/parent::F/ancestor::B/parent::A",
        Ppfx_translate.Regex_of_path.backward ~context:(Some "F")
          [ Ppfx_xpath.Ast.Parent, Some "D"; Ppfx_xpath.Ast.Ancestor, Some "B" ] );
    ];
  print_endline "\n-- Table 3: forward and backward PPF translations --";
  let no_omit = { Translate.default_options with omit_path_filters = false } in
  show ~options:no_omit "/A[@x = 3]/B/C//F";
  show ~options:no_omit "/A[@x = 3]/B";
  show "//F/parent::E/ancestor::B";
  print_endline "\n-- Table 4: order-axis steps --";
  show "//D/following-sibling::E";
  show "//D/preceding::G";
  print_endline "\n-- Table 5: predicates --";
  show ~options:no_omit "/A/B[C/*/F = 2]";
  show "//F[parent::E or ancestor::G]";
  print_endline "\n-- Table 6: predicate splitting with OR --";
  show ~options:no_omit "/A/B[C/*]";
  print_endline "\n-- Section 4.4: SQL splitting on the backbone --";
  show "/A/B/*"

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation () =
  print_endline "\n== Ablation: PPF design choices toggled off (XMark) ==";
  let st = xmark_stores config.small in
  let variants =
    [
      "full", Translate.default_options;
      ( "no 4.5 filter omission",
        { Translate.default_options with omit_path_filters = false } );
      "no forward merging", { Translate.default_options with merge_forward = false };
      "no FK child joins", { Translate.default_options with fk_child_joins = false };
      "fully per-step", { Translate.default_options with force_per_step = true };
    ]
  in
  let queries = [ "Q1"; "Q2"; "Q3"; "Q4"; "Q5"; "Q6"; "Q12"; "Q13"; "Q21"; "Q23"; "QA" ] in
  Printf.printf "%-22s" "variant";
  List.iter (fun q -> Printf.printf " %8s" q) queries;
  print_newline ();
  List.iter
    (fun (name, options) ->
      Printf.printf "%-22s" name;
      List.iter
        (fun qname ->
          let q = Xmark.query qname in
          let expr = Xparser.parse q in
          let tr = Translate.create ~options st.schema_store.Loader.mapping in
          let t =
            time_med (fun () ->
                match Translate.translate tr expr with
                | None -> 0
                | Some stmt ->
                  List.length (Engine.run st.schema_store.Loader.db stmt).Engine.rows)
          in
          Printf.printf " %8.4f" t)
        queries;
      print_newline ();
      flush stdout)
    variants

(* ------------------------------------------------------------------ *)
(* Scale sweep: where do the engines cross over?                        *)
(* ------------------------------------------------------------------ *)

let sweep () =
  current_section := "sweep";
  print_endline
    "\n== Scale sweep: per-query series over document size (seconds) ==";
  (* The series is capped at --large so a smoke run (CI) stays small;
     the default --large 200 keeps the full crossover study. *)
  let scales = List.filter (fun s -> s <= max 5 config.large) [ 5; 10; 25; 50; 100; 200 ] in
  let queries = [ "Q3"; "Q6"; "Q10"; "Q13"; "QA" ] in
  let stores = List.map (fun s -> s, xmark_stores s) scales in
  List.iter
    (fun qname ->
      let q = Xmark.query qname in
      Printf.printf "\n%s: %s\n" qname q;
      Printf.printf "%-10s %10s %10s %10s %12s %10s\n" "elements" "#nodes" "PPF"
        "Edge-PPF" "MonetDB-sim" "Accel";
      List.iter
        (fun (_, st) ->
          let ppf = run_engine st `Ppf q in
          let edge = run_engine st `Edge_ppf q in
          let monet = run_engine st `Monet q in
          let accel = run_engine st `Accel q in
          List.iter
            (fun (engine, (r : engine_result)) ->
              record ~dataset:st.label ~query:qname ~engine ~nodes:r.nodes
                ~seconds:r.seconds ())
            [ "ppf", ppf; "edge-ppf", edge; "monet-sim", monet; "accel", accel ];
          Printf.printf "%-10d %10d %s    %s      %s   %s\n" (Doc.size st.doc)
            ppf.nodes (fmt_time ppf) (fmt_time edge) (fmt_time monet) (fmt_time accel);
          flush stdout)
        stores)
    queries

(* ------------------------------------------------------------------ *)
(* Extensions: twig joins (Section 7 future work) and the extended      *)
(* query set                                                            *)
(* ------------------------------------------------------------------ *)

let extensions () =
  print_endline "\n== Extensions: twig joins (paper Section 7) and extended queries ==";
  let st = xmark_stores config.small in
  let twig_store = Twig.of_doc st.doc in
  Printf.printf "\ntwig-join subset — PPF SQL vs stack-based twig joins\n";
  Printf.printf "%-5s %8s %8s %8s\n" "query" "#nodes" "PPF" "Twig";
  List.iter
    (fun (name, q) ->
      let expr = Xparser.parse q in
      let ppf = run_engine st `Ppf q in
      let t_twig = time_med (fun () -> List.length (Twig.run twig_store expr)) in
      let n_twig = List.length (Twig.run twig_store expr) in
      Printf.printf "%-5s %8d  %s  %s%s\n" name ppf.nodes (fmt_time ppf)
        (fmt_time { nodes = n_twig; seconds = t_twig })
        (if n_twig = ppf.nodes then "" else "  <-- DISAGREEMENT");
      flush stdout)
    Xmark.twig_queries;
  Printf.printf
    "\nextended queries (contains/starts-with/string-length/count) — PPF vs MonetDB-sim\n";
  Printf.printf "%-5s %8s %8s %12s\n" "query" "#nodes" "PPF" "MonetDB-sim";
  List.iter
    (fun (name, q) ->
      let ppf = run_engine st `Ppf q in
      let monet = run_engine st `Monet q in
      Printf.printf "%-5s %8d  %s      %s%s\n" name ppf.nodes (fmt_time ppf)
        (fmt_time monet)
        (if monet.nodes = ppf.nodes then "" else "  <-- DISAGREEMENT");
      flush stdout)
    Xmark.extension_queries

(* ------------------------------------------------------------------ *)
(* Service layer: cold vs warm prepared-query serving                  *)
(* ------------------------------------------------------------------ *)

module Session = Ppfx_service.Session
module Metrics = Ppfx_service.Metrics

(* Cold = a cache-less arrival (parse + translate + plan + execute every
   time, measured by clearing the session cache before each rep). Warm =
   the same query arriving at a hot session: parse + O(1) cache hit +
   plan replay; translate and plan are skipped entirely, which the
   metrics dump proves (their stage counts stop at one per distinct
   query). *)
let service () =
  current_section := "service";
  print_endline
    "\n== Service layer: cold vs warm prepared-query serving (XPathMark) ==";
  let doc = Doc.of_tree (Xmark.generate ~items_per_region:config.small ()) in
  let store = Loader.shred (Xmark.schema ()) doc in
  let dataset = Printf.sprintf "XMark (%d elements)" (Doc.size doc) in
  Printf.printf "\n%s — median of %d runs, milliseconds\n" dataset config.reps;
  let cold_session = Session.create store in
  let warm_session = Session.create store in
  Printf.printf "%-5s %8s %10s %10s %9s\n" "query" "#nodes" "cold ms" "warm ms" "speedup";
  let cold_total = ref 0.0 and warm_total = ref 0.0 in
  List.iter
    (fun (name, q) ->
      let cold =
        time_med (fun () ->
            Session.invalidate_cache cold_session;
            List.length (Session.run_ids cold_session q))
      in
      (* Prime the warm session, then measure the steady-state serving
         path: parse + cache hit + plan replay. *)
      let nodes = List.length (Session.run_ids warm_session q) in
      let warm = time_med (fun () -> List.length (Session.run_ids warm_session q)) in
      cold_total := !cold_total +. cold;
      warm_total := !warm_total +. warm;
      record ~dataset ~query:name ~engine:"service-cold" ~nodes ~seconds:cold ();
      record ~dataset ~query:name ~engine:"service-warm" ~nodes ~seconds:warm ();
      Printf.printf "%-5s %8d %10.3f %10.3f %8.1fx\n" name nodes (1e3 *. cold)
        (1e3 *. warm) (cold /. warm);
      flush stdout)
    Xmark.queries;
  Printf.printf "%-5s %8s %10.3f %10.3f %8.1fx\n" "total" "" (1e3 *. !cold_total)
    (1e3 *. !warm_total)
    (!cold_total /. !warm_total);
  print_newline ();
  print_string (Metrics.dump (Session.metrics warm_session));
  Printf.printf "\nwarm < cold: %b\n" (!warm_total < !cold_total)

(* ------------------------------------------------------------------ *)
(* Cluster: shard-scaling scatter-gather                               *)
(* ------------------------------------------------------------------ *)

module Cluster = Ppfx_cluster.Cluster

(* Shard-count scaling of the scatter-gather cluster on XPathMark.

   Two series per shard count N:

   - [cluster-N]        measured wall-clock of the scatter-gather (or of
                        the single-store fallback, for non-partitionable
                        queries);
   - [cluster-N-critical] the critical path: the slowest shard's execute
                        latency plus the merge. On a host with >= N idle
                        cores the gather completes in exactly this time;
                        on this machine the domains time-slice, so the
                        measured wall-clock cannot drop below the sum of
                        the per-shard work and the critical path is the
                        honest scaling signal (same reasoning as the
                        monet_sim simulator baseline).

   Fallback queries report the same number for both series. *)
let cluster_bench () =
  current_section := "cluster";
  print_endline "\n== Cluster: shard-count scaling, scatter-gather (XPathMark) ==";
  let tree = Xmark.generate ~items_per_region:config.small () in
  let doc = Doc.of_tree tree in
  let schema = Xmark.schema () in
  let dataset = Printf.sprintf "XMark (%d elements)" (Doc.size doc) in
  let shard_counts = [ 1; 2; 4; 8 ] in
  let reps = max 1 config.reps in
  Printf.printf "\n%s — median of %d runs, milliseconds (wall / critical path)\n"
    dataset reps;
  let clusters =
    List.map
      (fun n ->
        let c = Cluster.create ~shards:n schema [ tree ] in
        Printf.printf "shards=%d: partition %s\n" n
          (String.concat " "
             (Array.to_list (Array.map string_of_int (Cluster.partition_counts c))));
        n, c)
      shard_counts
  in
  Printf.printf "%-5s %8s %9s" "query" "#nodes" "route";
  List.iter (fun n -> Printf.printf " %13s" (Printf.sprintf "%d-shard" n)) shard_counts;
  print_newline ();
  let speedups = ref [] in
  List.iter
    (fun (name, q) ->
      let route =
        match Cluster.verdict (snd (List.hd clusters)) q with
        | Some Ppfx_cluster.Analysis.Partitionable -> `Scatter
        | Some (Ppfx_cluster.Analysis.Order_partitionable _) -> `Order
        | Some (Ppfx_cluster.Analysis.Fallback _) | None -> `Fallback
      in
      let scatter = route <> `Fallback in
      let nodes = ref (-1) in
      let per_shard =
        List.map
          (fun (n, c) ->
            (* Prime: translate/plan once so the timed runs measure the
               warm serving path. *)
            nodes := List.length (Cluster.run_ids c q);
            let walls = ref [] and crits = ref [] in
            for _ = 1 to reps do
              let t0 = Unix.gettimeofday () in
              ignore (Cluster.run_ids c q);
              let wall = Unix.gettimeofday () -. t0 in
              let crit =
                if scatter then
                  match Cluster.last_stats c with
                  | Some s -> s.Cluster.critical_path
                  | None -> wall
                else wall
              in
              walls := wall :: !walls;
              crits := crit :: !crits
            done;
            let wall = median !walls and crit = median !crits in
            record ~dataset ~query:name ~engine:(Printf.sprintf "cluster-%d" n)
              ~nodes:!nodes ~seconds:wall ();
            record ~dataset ~query:name
              ~engine:(Printf.sprintf "cluster-%d-critical" n)
              ~nodes:!nodes ~seconds:crit ();
            n, wall, crit)
          clusters
      in
      let crit_of n =
        List.find_map (fun (m, _, c) -> if m = n then Some c else None) per_shard
      in
      (match crit_of 1, crit_of 4 with
       | Some c1, Some c4 when scatter && c4 > 0.0 ->
         speedups := (name, c1 /. c4) :: !speedups
       | _ -> ());
      Printf.printf "%-5s %8d %9s" name !nodes
        (match route with
         | `Scatter -> "scatter"
         | `Order -> "order"
         | `Fallback -> "fallback");
      List.iter
        (fun (_, wall, crit) ->
          Printf.printf " %6.2f/%6.2f" (1e3 *. wall) (1e3 *. crit))
        per_shard;
      print_newline ();
      flush stdout)
    Xmark.queries;
  (match List.sort (fun (_, a) (_, b) -> compare b a) !speedups with
   | (name, s) :: _ ->
     Printf.printf
       "\nbest critical-path speedup at 4 shards vs 1: %.2fx (%s); >= 2x: %b\n" s name
       (s >= 2.0)
   | [] -> ());
  List.iter (fun (_, c) -> Cluster.close c) clusters

(* ------------------------------------------------------------------ *)
(* Engine: optimizer pass (semi-join reduction + hash join) on vs off  *)
(* ------------------------------------------------------------------ *)

module Regex = Ppfx_regex.Regex

(* The steady state is where the semi-join reduction pays off: an
   optimized plan sweeps its path regex over the small Paths dimension
   once at prepare time and thereafter probes a cached integer set per
   execution, while an unoptimized plan re-evaluates the regex per paths
   row on every execution. One-shot timings hide the difference (both
   planners put the paths table outermost and scan it exactly once), so
   this section measures warm prepared plans: prepare once per opts
   configuration, execute [reps] times, and read per-execution operator
   counters off the plan via [Engine.plan_stats] snapshots. Regex cache
   hits/misses are deltas around the prepare — compiled patterns are
   shared across prepares, so every configuration after the first hits. *)
let engine_bench () =
  current_section := "engine";
  print_endline
    "\n== Engine: optimizer pass (semi-join reduction + hash/merge joins) on vs off ==";
  let st = xmark_stores config.small in
  let db = st.schema_store.Loader.db in
  let tr = Translate.create st.schema_store.Loader.mapping in
  let off =
    {
      Engine.semijoin_reduction = false;
      hash_join = false;
      force_hash_join = false;
      merge_join = false;
      force_merge_join = false;
      content_probe = false;
    }
  in
  let configs =
    [
      "unopt", off;
      "reduce-only", { off with Engine.semijoin_reduction = true };
      "hash-only", { off with Engine.hash_join = true; force_hash_join = true };
      "merge-only", { off with Engine.merge_join = true };
      "content-off", { Engine.default_opts with Engine.content_probe = false };
      "full", Engine.default_opts;
    ]
  in
  (* Q9/Q10/Q11 are the order-axis queries: preceding-sibling, following
     and preceding — the shapes the Dewey merge join targets. Q6, XE1
     (contains) and XE2 (starts-with) carry value/path regexes the
     content indexes turn into probe-then-verify. *)
  let queries = [ "Q2"; "Q3"; "Q4"; "Q6"; "Q9"; "Q10"; "Q11"; "XE1"; "XE2" ] in
  let reps = max 1 config.reps in
  Printf.printf "\n%s — warm prepared plans, median of %d executions\n" st.label reps;
  Printf.printf "%-5s %-12s %7s %10s %11s %12s %12s %10s\n" "query" "plan" "#nodes"
    "exec ms" "regex/exec" "scanned/exec" "probed/exec" "rx-cache";
  Regex.cache_clear ();
  let outcomes = ref [] in
  let warm_dfa = ref 0 and warm_nfa = ref 0 in
  List.iter
    (fun qname ->
      let q = Xmark.query qname in
      match Translate.translate tr (Xparser.parse q) with
      | None -> ()
      | Some stmt ->
        List.iter
          (fun (cname, opts) ->
            let h0 = Regex.cache_hits () and m0 = Regex.cache_misses () in
            let plan = Engine.prepare ~opts db stmt in
            let hits = Regex.cache_hits () - h0
            and misses = Regex.cache_misses () - m0 in
            let plan_cost = Engine.plan_stats plan in
            let nodes = ref 0 in
            let before = Engine.plan_stats plan in
            let seconds =
              time_med (fun () ->
                  nodes := List.length (Translate.result_ids (Engine.run_plan plan));
                  !nodes)
            in
            let total = Engine.stats_diff (Engine.plan_stats plan) before in
            let per_exec n = float_of_int n /. float_of_int reps in
            (* Exec-time regex machine runs of either flavor: shared
               frozen-DFA executions plus lazy NFA-backed fallbacks. *)
            let regex_pe =
              per_exec (total.Engine.regex_exec_evals + total.Engine.dfa_execs)
            and scanned_pe = per_exec total.Engine.rows_scanned
            and probed_pe = per_exec total.Engine.rows_probed in
            if String.equal cname "full" then begin
              warm_dfa := !warm_dfa + total.Engine.dfa_execs;
              warm_nfa := !warm_nfa + total.Engine.regex_exec_evals
            end;
            let hit_rate =
              if hits + misses = 0 then nan
              else float_of_int hits /. float_of_int (hits + misses)
            in
            record ~dataset:st.label ~query:qname ~engine:cname ~nodes:!nodes
              ~seconds
              ~extra:
                (Printf.sprintf
                   "\"regex_evals_per_exec\":%.1f,\"rows_scanned_per_exec\":%.1f,\
                    \"rows_probed_per_exec\":%.1f,\"plan_regex_evals\":%d,\
                    \"plan_reductions\":%d,\"hash_builds\":%d,\
                    \"merge_probes\":%d,\"merge_steps\":%d,\
                    \"merge_backtracks\":%d,\"dfa_execs\":%d,\
                    \"regex_exec_evals\":%d,\"content_probes\":%d,\
                    \"content_candidates\":%d,\"content_verified\":%d,\
                    \"peak_bytes\":%d,\
                    \"regex_cache_hits\":%d,\"regex_cache_misses\":%d,\
                    \"regex_cache_hit_rate\":%s"
                   regex_pe scanned_pe probed_pe plan_cost.Engine.regex_plan_evals
                   plan_cost.Engine.reductions total.Engine.hash_builds
                   total.Engine.merge_probes total.Engine.merge_steps
                   total.Engine.merge_backtracks total.Engine.dfa_execs
                   total.Engine.regex_exec_evals total.Engine.content_probes
                   total.Engine.content_candidates total.Engine.content_verified
                   (Engine.plan_stats plan).Engine.peak_bytes hits misses
                   (if Float.is_nan hit_rate then "null"
                    else Printf.sprintf "%.3f" hit_rate))
              ();
            outcomes := (qname, cname, seconds, regex_pe) :: !outcomes;
            Printf.printf "%-5s %-12s %7d %10.3f %11.1f %12.1f %12.1f %6d/%d\n" qname
              cname !nodes (1e3 *. seconds) regex_pe scanned_pe probed_pe hits
              (hits + misses);
            flush stdout)
          configs)
    queries;
  (* Acceptance summary: full-optimizer warm plans vs unoptimized ones. *)
  let find q c =
    List.find_map
      (fun (q', c', s, r) -> if q = q' && c = c' then Some (s, r) else None)
      !outcomes
  in
  print_newline ();
  let best = ref None in
  List.iter
    (fun qname ->
      match find qname "unopt", find qname "full" with
      | Some (s0, r0), Some (s1, r1) ->
        let regex_ratio = if r1 > 0.0 then r0 /. r1 else infinity in
        let speedup = s0 /. s1 in
        Printf.printf
          "%-5s full vs unopt: %5.1fx fewer regex evals/exec (%.1f -> %.1f), %4.1fx faster\n"
          qname regex_ratio r0 r1 speedup;
        let score = Float.min (regex_ratio /. 10.0) (speedup /. 2.0) in
        (match !best with
         | Some (_, _, _, bscore) when bscore >= score -> ()
         | _ -> best := Some (qname, regex_ratio, speedup, score))
      | _ -> ())
    queries;
  (match !best with
   | Some (qname, r, s, _) ->
     Printf.printf
       "\nbest (%s): regex reduction %.1fx (>= 10x: %b), speedup %.2fx (>= 2x: %b)\n"
       qname r (r >= 10.0) s (s >= 2.0)
   | None -> ());
  (* Order-axis acceptance: the Dewey merge join alone vs no optimizer. *)
  let merge_best = ref None in
  List.iter
    (fun qname ->
      match find qname "unopt", find qname "merge-only" with
      | Some (s0, _), Some (s1, _) when s1 > 0.0 ->
        let speedup = s0 /. s1 in
        Printf.printf "%-5s merge join vs unopt: %4.2fx faster\n" qname speedup;
        (match !merge_best with
         | Some (_, b) when b >= speedup -> ()
         | _ -> merge_best := Some (qname, speedup))
      | _ -> ())
    [ "Q9"; "Q10"; "Q11" ];
  (match !merge_best with
   | Some (qname, s) ->
     Printf.printf "best order-axis merge-join speedup: %.2fx (%s); > 1x: %b\n" s
       qname (s > 1.0)
   | None -> ());
  (* Content-index acceptance: probe-then-verify vs exec-time regex
     scans, everything else at defaults. *)
  List.iter
    (fun qname ->
      match find qname "content-off", find qname "full" with
      | Some (s0, r0), Some (s1, r1) when s1 > 0.0 ->
        Printf.printf
          "%-5s content probe vs regex scan: %4.2fx faster, regex evals/exec %.1f -> %.1f\n"
          qname (s0 /. s1) r0 r1
      | _ -> ())
    [ "Q6"; "XE1"; "XE2" ];
  (match find "Q6" "content-off", find "Q6" "full" with
   | Some (_, r0), Some (_, r1) when r1 > 0.0 ->
     Printf.printf
       "Q6 exec-time regex reduction from content probe: %.1fx (>= 2x: %b)\n"
       (r0 /. r1) (r0 /. r1 >= 2.0)
   | _ -> ());
  Printf.printf "warm full plans: dfa_execs > 0: %b; exec-time regex NFA simulations = 0: %b\n"
    (!warm_dfa > 0) (!warm_nfa = 0);
  Printf.printf "regex compile cache: %d entries, %d hits, %d misses overall\n"
    (Regex.cache_size ()) (Regex.cache_hits ()) (Regex.cache_misses ());
  (* Layout: path-partitioned fact tables (the default) vs a plain heap.
     Same document, same translated SQL, default optimizer opts — only
     the physical layout differs, so deltas isolate partition pruning:
     rows scanned per exec collapse to the matched partitions, the
     per-row pathid probe disappears, and the plan retains a matched-key
     list instead of a probe hashtable (peak_bytes). *)
  print_endline "\n-- layout: path-partitioned vs heap fact tables --";
  let heap_store =
    Loader.load
      (Loader.create ~partitioned:false (Ppfx_shred.Mapping.of_schema (Xmark.schema ())))
      st.doc
  in
  let layouts = [ "heap", heap_store.Loader.db; "partitioned", db ] in
  let layout_queries = [ "Q2"; "Q3"; "Q4"; "Q6"; "Q10" ] in
  Printf.printf "%-5s %-12s %7s %10s %12s %12s %10s %12s\n" "query" "layout" "#nodes"
    "exec ms" "scanned/exec" "parts s/p" "probed/exec" "peak bytes";
  let layout_rows = ref [] in
  List.iter
    (fun qname ->
      let q = Xmark.query qname in
      match Translate.translate tr (Xparser.parse q) with
      | None -> ()
      | Some stmt ->
        List.iter
          (fun (lname, ldb) ->
            let plan = Engine.prepare ~opts:Engine.default_opts ldb stmt in
            let nodes = ref 0 in
            let before = Engine.plan_stats plan in
            let seconds =
              time_med (fun () ->
                  nodes := List.length (Translate.result_ids (Engine.run_plan plan));
                  !nodes)
            in
            let total = Engine.stats_diff (Engine.plan_stats plan) before in
            let per_exec n = float_of_int n /. float_of_int reps in
            let scanned_pe = per_exec total.Engine.rows_scanned
            and probed_pe = per_exec total.Engine.rows_probed
            and parts_s = per_exec total.Engine.partitions_scanned
            and parts_p = per_exec total.Engine.partitions_pruned in
            let peak = (Engine.plan_stats plan).Engine.peak_bytes in
            record ~dataset:st.label ~query:qname ~engine:("layout-" ^ lname)
              ~nodes:!nodes ~seconds
              ~extra:
                (Printf.sprintf
                   "\"rows_scanned_per_exec\":%.1f,\"rows_probed_per_exec\":%.1f,\
                    \"partitions_scanned_per_exec\":%.1f,\
                    \"partitions_pruned_per_exec\":%.1f,\"peak_bytes\":%d"
                   scanned_pe probed_pe parts_s parts_p peak)
              ();
            layout_rows := (qname, lname, seconds, scanned_pe, parts_p, peak) :: !layout_rows;
            Printf.printf "%-5s %-12s %7d %10.3f %12.1f %6.1f/%-5.1f %10.1f %12d\n"
              qname lname !nodes (1e3 *. seconds) scanned_pe parts_s parts_p
              probed_pe peak;
            flush stdout)
          layouts)
    layout_queries;
  let layout_find q l =
    List.find_map
      (fun (q', l', s, sc, pp, pk) ->
        if q = q' && l = l' then Some (s, sc, pp, pk) else None)
      !layout_rows
  in
  print_newline ();
  let improved = ref 0 and pruned_nonzero = ref false in
  List.iter
    (fun qname ->
      match layout_find qname "heap", layout_find qname "partitioned" with
      | Some (s0, sc0, _, pk0), Some (s1, sc1, pp1, pk1) ->
        if pp1 > 0.0 then pruned_nonzero := true;
        let faster = s1 < s0 and smaller = pk1 < pk0 in
        if faster && smaller then incr improved;
        Printf.printf
          "%-5s partitioned vs heap: %4.2fx faster, scanned/exec %.1f -> %.1f, \
           peak bytes %d -> %d, pruned/exec %.1f\n"
          qname
          (if s1 > 0.0 then s0 /. s1 else infinity)
          sc0 sc1 pk0 pk1 pp1
      | _ -> ())
    layout_queries;
  Printf.printf
    "partition pruning nonzero on a path-filter query: %b; wall+peak improved on >=2 queries: %b\n"
    !pruned_nonzero (!improved >= 2)

(* ------------------------------------------------------------------ *)
(* Net: the wire-protocol server under open-loop load                  *)
(* ------------------------------------------------------------------ *)

module Server = Ppfx_net.Server
module Wire = Ppfx_net.Wire
module Client = Ppfx_client.Client

(* Open-loop load generation: requests fire on a fixed arrival schedule
   (t_i = t0 + i/qps) drawn from a shared atomic index by [conns]
   client threads, one wire connection each. Latency is measured from
   the scheduled arrival, not the send, so queueing delay under
   overload is part of the number — a closed-loop generator would hide
   it by slowing its arrival rate to match the server (coordinated
   omission). Percentiles come from the same log2 histograms the
   serving metrics use. *)

type load = {
  ok : int;
  req_rejected : int;  (* request-level admission errors *)
  conn_rejected : int;  (* connections refused at accept *)
  load_failed : int;  (* transport / protocol failures *)
  wall : float;
  lat : Metrics.t;  (* Execute stage = per-request latency *)
}

let open_loop ~port ~conns ~qps ~total ~queries =
  let lat = Metrics.create () in
  let ok = Atomic.make 0 and rejected = Atomic.make 0 in
  let conn_rejected = Atomic.make 0 and failed = Atomic.make 0 in
  let next = Atomic.make 0 in
  let period = 1.0 /. qps in
  let nq = Array.length queries in
  let t0 = Unix.gettimeofday () +. 0.05 in
  let worker _ =
    match Client.connect ~client_name:"ppfx-bench" ~port () with
    | exception Client.Server_error { code = Wire.Admission; _ } ->
      Atomic.incr conn_rejected
    | exception _ -> Atomic.incr failed
    | c ->
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < total then begin
          let sched = t0 +. (float_of_int i *. period) in
          let now = Unix.gettimeofday () in
          if sched > now then Unix.sleepf (sched -. now);
          (match Client.run_ids c queries.(i mod nq) with
           | _ ->
             Metrics.record lat Metrics.Execute (Unix.gettimeofday () -. sched);
             Atomic.incr ok
           | exception Client.Server_error { code = Wire.Admission; _ } ->
             Atomic.incr rejected
           | exception _ -> Atomic.incr failed);
          loop ()
        end
      in
      (try loop () with _ -> ());
      (try Client.close c with _ -> ())
  in
  let threads = List.init conns (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  {
    ok = Atomic.get ok;
    req_rejected = Atomic.get rejected;
    conn_rejected = Atomic.get conn_rejected;
    load_failed = Atomic.get failed;
    wall = Unix.gettimeofday () -. t0;
    lat;
  }

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.3f" f

let report_load ~dataset ~phase ~conns ~qps ~total (r : load) (m : Metrics.t) =
  let pct q = 1e3 *. Metrics.stage_percentile r.lat Metrics.Execute q in
  let p50 = pct 0.5 and p95 = pct 0.95 and p99 = pct 0.99 in
  let achieved = float_of_int r.ok /. r.wall in
  Printf.printf
    "%-9s %4d conns %6.0f qps -> %7.1f qps  p50 %8.2f  p95 %8.2f  p99 %8.2f ms  \
     ok %4d  adm rej %d+%d  failed %d\n"
    phase conns qps achieved p50 p95 p99 r.ok r.conn_rejected r.req_rejected
    r.load_failed;
  flush stdout;
  record ~dataset ~query:phase ~engine:"net" ~nodes:(-1) ~seconds:r.wall
    ~extra:
      (Printf.sprintf
         "\"conns\":%d,\"target_qps\":%.0f,\"achieved_qps\":%.1f,\"requests\":%d,\
          \"ok\":%d,\"rejected\":%d,\"conn_rejected\":%d,\"failed\":%d,\
          \"p50_ms\":%s,\"p95_ms\":%s,\"p99_ms\":%s,\"bytes_in\":%d,\
          \"bytes_out\":%d,\"queue_depth_hwm\":%d,\"peak_conns\":%d"
         conns qps achieved total r.ok r.req_rejected r.conn_rejected r.load_failed
         (json_float p50) (json_float p95) (json_float p99) (Metrics.bytes_in m)
         (Metrics.bytes_out m) (Metrics.queue_depth_hwm m)
         (Metrics.peak_connections m))
    ()

let net () =
  current_section := "net";
  print_endline "\n== Net: wire-protocol server under open-loop load (XMark) ==";
  let doc = Doc.of_tree (Xmark.generate ~items_per_region:config.small ()) in
  let store = Loader.shred (Xmark.schema ()) doc in
  let dataset = Printf.sprintf "XMark (%d elements)" (Doc.size doc) in
  let factory () = Server.session_executor (Session.create store) in
  let queries =
    [| Xmark.query "Q1"; Xmark.query "Q3"; Xmark.query "Q6"; Xmark.query "Q13" |]
  in
  (* Sanity: the wire path must answer exactly like an in-process session. *)
  let serving =
    Server.start ~config:{ Server.default_config with workers = 2 } factory
  in
  let check_session = Session.create store in
  let agree =
    let c = Client.connect ~port:(Server.port serving) () in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        Array.for_all
          (fun q -> Client.run_ids c q = Session.run_ids check_session q)
          queries)
  in
  Printf.printf "wire results match in-process session: %b\n%!" agree;
  record ~dataset ~query:"wire-vs-session" ~engine:"net" ~nodes:(if agree then 1 else 0)
    ~seconds:nan ();
  Printf.printf "\n%s — open-loop, latency from scheduled arrival\n" dataset;
  let phase name ~conns ~qps ~total ~on =
    let r = open_loop ~port:(Server.port on) ~conns ~qps ~total ~queries in
    report_load ~dataset ~phase:name ~conns ~qps ~total r (Server.metrics on);
    r
  in
  ignore (phase "steady" ~conns:8 ~qps:150.0 ~total:320 ~on:serving);
  ignore (phase "c32" ~conns:32 ~qps:400.0 ~total:640 ~on:serving);
  Server.stop serving;
  (* Overload: a deliberately tiny server — one worker, a two-deep
     dispatch queue, eight connection slots — hit far above capacity.
     Admission control must reject (error frames) rather than degrade:
     the served requests still complete and the server survives. *)
  let tiny =
    { Server.default_config with
      workers = 1; queue_depth = 2; max_connections = 8 }
  in
  let overload = Server.start ~config:tiny factory in
  let r = phase "overload" ~conns:16 ~qps:2000.0 ~total:480 ~on:overload in
  Printf.printf
    "overload admission: %d connections refused, %d requests rejected, %d served \
     — rejects && survivors: %b\n"
    r.conn_rejected r.req_rejected r.ok
    ((r.conn_rejected > 0 || r.req_rejected > 0) && r.ok > 0);
  let m = Server.metrics overload in
  Printf.printf
    "overload server counters: accepted %d, rejected %d, peak active %d, \
     queue hwm %d, bytes in %d, bytes out %d\n"
    (Metrics.accepted m) (Metrics.rejected m) (Metrics.peak_connections m)
    (Metrics.queue_depth_hwm m) (Metrics.bytes_in m) (Metrics.bytes_out m);
  Server.stop overload

(* ------------------------------------------------------------------ *)
(* Write path: mutation throughput, plan retention, label growth       *)
(* ------------------------------------------------------------------ *)

module Update = Ppfx_update.Update
module Xtree = Ppfx_xml.Tree

(* Three measurements of the lib/update write path:
   - mutations/sec by subtree size (text patch, small fragment insert,
     full item-subtree insert, subtree delete);
   - a 90/10 read/write mix over a warm session: plan-cache retention
     with fine-grained invalidation vs the whole-epoch baseline (the
     optimization off), from the plans-retained / plans-invalidated
     session counters;
   - label-length growth under adversarial front inserts — every insert
     lands before the current first child, the worst case for ORDPATH
     caret labels (existing labels never move; only new ones grow). *)
let write_bench () =
  current_section := "write";
  print_endline "\n== Write path: ORDPATH subtree mutations (XMark) ==";
  let tree = Xmark.generate ~items_per_region:config.small () in
  let schema = Xmark.schema () in
  let dataset =
    Printf.sprintf "XMark (%d elements)" (Xtree.count_elements tree)
  in
  let by_tag u tag =
    Hashtbl.fold
      (fun id _ acc ->
        if String.equal (Update.node_tag u id) tag then id :: acc else acc)
      (Update.ranks u) []
  in
  (* First subtree with the given root tag, paired with its parent's
     tag, so the clone can be re-inserted at a conforming position. *)
  let find_fragment tag =
    let rec go ptag = function
      | Xtree.Text _ -> None
      | Xtree.Element { tag = t; children; _ } as e ->
        if String.equal t tag && ptag <> None then
          Some (Option.get ptag, e)
        else
          List.fold_left
            (fun acc c -> match acc with Some _ -> acc | None -> go (Some t) c)
            None children
    in
    match go None tree with
    | Some p -> p
    | None -> failwith ("write_bench: no <" ^ tag ^ "> in the document")
  in
  (* (a) mutation throughput by subtree size *)
  let u = Update.create schema [ tree ] in
  let n_ops = max 50 (config.reps * 50) in
  let bench_ops name ~elems f =
    let t0 = Unix.gettimeofday () in
    for i = 0 to n_ops - 1 do
      f i
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let rate = float_of_int n_ops /. dt in
    Printf.printf "  %-30s %10.0f mutations/s  (subtree = %d elements)\n" name
      rate elems;
    record ~dataset ~query:name ~engine:"update" ~nodes:elems
      ~seconds:(dt /. float_of_int n_ops)
      ~extra:(Printf.sprintf "\"ops\":%d,\"mutations_per_sec\":%.1f" n_ops rate)
      ()
  in
  let cities = Array.of_list (by_tag u "city") in
  bench_ops "set-text" ~elems:1 (fun i ->
      ignore
        (Update.exec u
           (Update.Set_text
              { target = cities.(i mod Array.length cities);
                text = Printf.sprintf "c%d" i })));
  let people = List.hd (by_tag u "people") in
  let person_frag =
    Ppfx_xml.Parser.parse
      {|<person id="wb"><name>w</name><emailaddress>mailto:w@b</emailaddress></person>|}
  in
  bench_ops "insert-small-fragment"
    ~elems:(Xtree.count_elements person_frag)
    (fun _ ->
      ignore
        (Update.exec u
           (Update.Insert_subtree
              { parent = people; before = None; fragment = person_frag })));
  let item_ptag, item_frag = find_fragment "item" in
  let item_parent = List.hd (by_tag u item_ptag) in
  let inserted_items = ref [] in
  bench_ops "insert-item-subtree"
    ~elems:(Xtree.count_elements item_frag)
    (fun _ ->
      ignore
        (Update.exec u
           (Update.Insert_subtree
              { parent = item_parent; before = None; fragment = item_frag }));
      match List.rev (Update.node_children u item_parent) with
      | last :: _ -> inserted_items := last :: !inserted_items
      | [] -> ());
  bench_ops "delete-item-subtree"
    ~elems:(Xtree.count_elements item_frag)
    (fun _ ->
      match !inserted_items with
      | id :: rest ->
        inserted_items := rest;
        ignore (Update.exec u (Update.Delete_subtree { target = id }))
      | [] -> ());
  (* (b) 90/10 read/write mix: plan retention vs whole-epoch *)
  let mixed fine_grained =
    let u = Update.create schema [ tree ] in
    let session = Session.create ~fine_grained (Update.store u) in
    let m = Session.metrics session in
    (* Reads whose path footprints are disjoint from the city-text
       writes below — the workload where fine-grained invalidation
       should shine. (Q13 `//*[@id]` would legitimately re-plan every
       time: its footprint covers all paths.) *)
    let reads =
      [| Xmark.query "Q1"; Xmark.query "Q6"; Xmark.query "Q2" |]
    in
    let cities = Array.of_list (by_tag u "city") in
    let iters = max 20 (config.reps * 10) in
    let t0 = Unix.gettimeofday () in
    for i = 0 to iters - 1 do
      for r = 0 to 8 do
        ignore (Session.run_ids session reads.((i + r) mod Array.length reads))
      done;
      ignore
        (Update.exec u
           (Update.Set_text
              { target = cities.(i mod Array.length cities);
                text = Printf.sprintf "w%d" i }))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let retained = Metrics.retained m and inval = Metrics.invalidations m in
    let total = retained + inval in
    let retention =
      if total = 0 then 0.0 else float_of_int retained /. float_of_int total
    in
    Printf.printf
      "  %-30s retained %4d, re-planned %4d -> %5.1f%% retention  (%.2f s)\n"
      (if fine_grained then "fine-grained invalidation" else "whole-epoch invalidation")
      retained inval (100. *. retention) dt;
    record ~dataset ~query:"mixed-90-10"
      ~engine:(if fine_grained then "fine-grained" else "whole-epoch")
      ~nodes:(iters * 10) ~seconds:dt
      ~extra:
        (Printf.sprintf "\"retained\":%d,\"invalidated\":%d,\"retention\":%.4f"
           retained inval retention)
      ()
  in
  print_endline "  90/10 read/write mix over a warm session:";
  mixed true;
  mixed false;
  (* (c) adversarial label growth: always insert before the first child *)
  let u = Update.create schema [ tree ] in
  let text_el = List.hd (by_tag u "text") in
  let base_len = Update.max_label_len u in
  let keyword = Ppfx_xml.Parser.parse "<keyword>w</keyword>" in
  Printf.printf
    "  adversarial front inserts under one <text> (base max label %d bytes):\n"
    base_len;
  let total = 64 in
  for i = 1 to total do
    let before =
      match Update.node_children u text_el with [] -> None | k :: _ -> Some k
    in
    ignore
      (Update.exec u
         (Update.Insert_subtree { parent = text_el; before; fragment = keyword }));
    if i land (i - 1) = 0 || i = total then begin
      let len = Update.max_label_len u in
      Printf.printf "    after %3d inserts: max label %3d bytes\n" i len;
      record ~dataset ~query:"adversarial-front-insert" ~engine:"update"
        ~nodes:i ~seconds:nan
        ~extra:(Printf.sprintf "\"max_label_bytes\":%d,\"base_label_bytes\":%d" len base_len)
        ()
    end
  done

(* ------------------------------------------------------------------ *)
(* Durability: WAL append policies and cold start                      *)
(* ------------------------------------------------------------------ *)

module Wstore = Ppfx_wal.Store
module Net_server = Ppfx_net.Server

(* Two measurements of the lib/wal durability layer:
   - mutations/sec with the log disabled (volatile baseline) and at the
     three append policies — Off (never fsync), Batch 32 (group
     commit), Fsync (fsync every ack): the price of each durability
     guarantee on the same set-text workload as the write section;
   - cold-start wall time: reopening a mutated store from its data
     directory — replaying the WAL against the last checkpoint, and
     from a clean-shutdown final checkpoint — vs re-shredding the
     mutated documents from source. *)
let durability_bench () =
  current_section := "durability";
  print_endline "\n== Durability: WAL append policies and cold start (XMark) ==";
  let tree = Xmark.generate ~items_per_region:config.small () in
  let schema = Xmark.schema () in
  let dataset =
    Printf.sprintf "XMark (%d elements)" (Xtree.count_elements tree)
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Unix.unlink path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  let scratch name =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ppfx-bench-wal-%d-%s" (Unix.getpid ()) name)
  in
  let by_tag u tag =
    Hashtbl.fold
      (fun id _ acc ->
        if String.equal (Update.node_tag u id) tag then id :: acc else acc)
      (Update.ranks u) []
  in
  let n_ops = max 200 (config.reps * 100) in
  (* (a) mutation throughput per append policy *)
  let bench_policy name durability =
    let u = Update.create schema [ tree ] in
    let cities = Array.of_list (by_tag u "city") in
    let w =
      match durability with
      | None -> None
      | Some durability ->
        let dir = scratch name in
        rm_rf dir;
        Some
          (Wstore.init ~durability ~dir ~db:(Update.db u)
             ~meta:(Net_server.store_meta u) ())
    in
    let exec op =
      match w with
      | None -> ignore (Update.exec u op)
      | Some w ->
        let cs = Update.stage u op in
        ignore (Wstore.append w ~op cs : int);
        Update.commit (Update.db u) cs
    in
    let t0 = Unix.gettimeofday () in
    for i = 0 to n_ops - 1 do
      exec
        (Update.Set_text
           { target = cities.(i mod Array.length cities);
             text = Printf.sprintf "d%d" i })
    done;
    Option.iter Wstore.flush w;
    let dt = Unix.gettimeofday () -. t0 in
    let rate = float_of_int n_ops /. dt in
    Printf.printf "  %-30s %10.0f mutations/s\n" name rate;
    record ~dataset ~query:"set-text" ~engine:name ~nodes:1
      ~seconds:(dt /. float_of_int n_ops)
      ~extra:(Printf.sprintf "\"ops\":%d,\"mutations_per_sec\":%.1f" n_ops rate)
      ();
    Option.iter
      (fun w ->
        let dir = Wstore.dir w in
        Wstore.close w;
        rm_rf dir)
      w
  in
  bench_policy "volatile (no wal)" None;
  bench_policy "wal durability=off" (Some Wstore.Off);
  bench_policy "wal durability=batch:32" (Some (Wstore.Batch 32));
  bench_policy "wal durability=fsync" (Some Wstore.Fsync);
  (* (b) cold start from the data directory vs re-shred from source *)
  let dir = scratch "cold" in
  rm_rf dir;
  let u = Update.create schema [ tree ] in
  let w =
    Wstore.init ~durability:Wstore.Off ~dir ~db:(Update.db u)
      ~meta:(Net_server.store_meta u) ()
  in
  let cities = Array.of_list (by_tag u "city") in
  let logged = max 200 (config.reps * 100) in
  for i = 0 to logged - 1 do
    let op =
      Update.Set_text
        { target = cities.(i mod Array.length cities);
          text = Printf.sprintf "r%d" i }
    in
    let cs = Update.stage u op in
    ignore (Wstore.append w ~op cs : int);
    Update.commit (Update.db u) cs
  done;
  let mutated = Update.current_trees u in
  let cold label =
    (* recover clears the clean marker, so only the first timed run sees
       a clean manifest — keep that one for reporting *)
    let recovered = ref None in
    let dt =
      time_med (fun () ->
          match Wstore.recover ~dir () with
          | Error e -> failwith ("durability bench: recover: " ^ e)
          | Ok r ->
            (match
               Wstore.rebuild_full ~db:r.Wstore.db ~meta:r.Wstore.meta
                 r.Wstore.records
             with
             | Error e -> failwith ("durability bench: rebuild: " ^ e)
             | Ok u' ->
               if !recovered = None then recovered := Some (r, u'));
            Wstore.close r.Wstore.store)
    in
    let r, u' = Option.get !recovered in
    Printf.printf "  %-30s %10.4f s  (replayed %d records)\n" label dt
      r.Wstore.recovery.Wstore.replayed;
    record ~dataset ~query:"cold-start" ~engine:label ~nodes:(Update.size u')
      ~seconds:dt
      ~extra:
        (Printf.sprintf "\"replayed\":%d,\"clean\":%b"
           r.Wstore.recovery.Wstore.replayed r.Wstore.recovery.Wstore.clean)
      ();
    u'
  in
  Wstore.close w;
  let u_replay = cold "recover (wal replay)" in
  (* a clean shutdown rolls the log into a final checkpoint *)
  let w =
    match Wstore.recover ~dir () with
    | Ok r ->
      (match Wstore.rebuild_full ~db:r.Wstore.db ~meta:r.Wstore.meta r.Wstore.records with
       | Ok u' -> Wstore.close_clean r.Wstore.store ~db:(Update.db u') ~meta:(Net_server.store_meta u')
       | Error e -> failwith e);
      r
    | Error e -> failwith e
  in
  ignore w;
  let u_clean = cold "recover (clean checkpoint)" in
  let dt_shred = time_med (fun () -> Update.create schema mutated) in
  Printf.printf "  %-30s %10.4f s\n" "re-shred from source" dt_shred;
  record ~dataset ~query:"cold-start" ~engine:"re-shred" ~nodes:(Update.size u)
    ~seconds:dt_shred ();
  (* the recovered stores answer exactly like the live mutated store *)
  let s_live = Session.create (Update.store u) in
  List.iter
    (fun u' ->
      let s' = Session.create (Update.store u') in
      List.iter
        (fun (name, q) ->
          if Session.run_ids s_live q <> Session.run_ids s' q then
            failwith ("durability bench: " ^ name ^ " diverged after recovery"))
        Xmark.queries)
    [ u_replay; u_clean ];
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  print_endline "\n== Bechamel micro-benchmarks ==";
  let open Bechamel in
  let open Toolkit in
  let dewey_a = Ppfx_dewey.Dewey.of_components [ 1; 4; 2; 9; 1 ] in
  let dewey_b = Ppfx_dewey.Dewey.of_components [ 1; 4; 2; 9; 1; 3; 2 ] in
  let regex =
    Ppfx_regex.Regex.compile "^/site/regions/[^/]+/item/description/(.+/)?keyword$"
  in
  let subject = "/site/regions/africa/item/description/parlist/listitem/text/keyword" in
  ignore (Ppfx_regex.Regex.search regex subject);
  let btree = Ppfx_minidb.Btree.create ~width:1 () in
  for i = 0 to 9999 do
    Ppfx_minidb.Btree.insert btree [| Ppfx_minidb.Value.Int i |] i
  done;
  (* One Test.make per paper table/figure, at a tiny scale. *)
  let tiny = xmark_stores 5 in
  let tiny_dblp = dblp_stores 200 in
  let run_all st queries engines () =
    List.iter
      (fun (_, q) ->
        let expr = Xparser.parse q in
        List.iter
          (fun engine ->
            match engine with
            | `Ppf ->
              let tr = Translate.create st.schema_store.Loader.mapping in
              (match Translate.translate tr expr with
               | None -> ()
               | Some stmt -> ignore (Engine.run st.schema_store.Loader.db stmt))
            | `Edge_ppf ->
              (match Edge_translate.translate expr with
               | None -> ()
               | Some stmt -> ignore (Engine.run st.edge_store.Edge.db stmt))
            | `Monet -> ignore (Monet_sim.run st.monet expr))
          engines)
      queries
  in
  let tests =
    Test.make_grouped ~name:"ppfx"
      [
        Test.make ~name:"dewey:is_descendant"
          (Staged.stage (fun () -> Ppfx_dewey.Dewey.is_descendant dewey_b ~of_:dewey_a));
        Test.make ~name:"regex:path-filter"
          (Staged.stage (fun () -> Ppfx_regex.Regex.search regex subject));
        Test.make ~name:"btree:point-lookup"
          (Staged.stage (fun () ->
               Ppfx_minidb.Btree.find_equal btree [| Ppfx_minidb.Value.Int 4242 |]));
        Test.make ~name:"monet:staircase-Q6"
          (Staged.stage
             (let expr = Xparser.parse (Xmark.query "Q6") in
              fun () -> Monet_sim.run tiny.monet expr));
        Test.make ~name:"fig3:xmark-ppf-vs-edge"
          (Staged.stage (run_all tiny Xmark.queries [ `Ppf; `Edge_ppf ]));
        Test.make ~name:"fig4:xmark-all-engines"
          (Staged.stage (run_all tiny Xmark.queries [ `Ppf; `Edge_ppf; `Monet ]));
        Test.make ~name:"appendixC:dblp-all-engines"
          (Staged.stage (run_all tiny_dblp Dblp.queries [ `Ppf; `Edge_ppf; `Monet ]));
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw_results = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure_label by_test ->
      if String.equal measure_label (Measure.label Instance.monotonic_clock) then
        Hashtbl.iter
          (fun test_name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Printf.printf "%-36s %14.0f ns/run\n" test_name est
            | Some _ | None -> Printf.printf "%-36s (no estimate)\n" test_name)
          by_test)
    results

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  parse_args ();
  Printf.printf "ppfx benchmark harness — scales: small=%d large=%d dblp=%d, reps=%d\n"
    config.small config.large config.dblp_entries config.reps;
  if wants "tables" then tables ();
  if wants "fig3" then fig3 ();
  if wants "fig4" then fig4 ();
  if wants "dblp" then dblp_table ();
  if wants "ablation" then ablation ();
  if wants "sweep" then sweep ();
  if wants "extensions" then extensions ();
  if wants "service" then service ();
  if wants "cluster" then cluster_bench ();
  if wants "engine" then engine_bench ();
  if wants "write" then write_bench ();
  if wants "durability" then durability_bench ();
  if wants "net" then net ();
  if wants "micro" then micro ();
  write_json ()
